// Package retry gives an agent's view of the cloud at-least-once delivery:
// it wraps a transport.Cloud and re-sends failed calls under a capped
// exponential backoff with seeded jitter, so heartbeats, binds and unbinds
// survive a lossy network instead of failing on the first dropped packet.
//
// Retrying a mutation is only safe if redelivery cannot apply it twice, so
// the wrapper stamps every Bind and Unbind request with a fresh
// idempotency key (the same key across all attempts of one logical
// request); the cloud deduplicates redeliveries by that key. Protocol
// errors — the cloud's definitive application-level answers, recognized by
// their wire codes — are never retried: only transport-level failures are.
package retry

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
)

// ErrClosed is returned (wrapping the last transport error, if any) when
// the wrapper is closed while a call is waiting to retry.
var ErrClosed = errors.New("retry: transport closed")

// Default policy parameters.
const (
	// DefaultMaxAttempts bounds the total deliveries of one logical call.
	DefaultMaxAttempts = 5
	// DefaultBaseDelay is the first backoff interval.
	DefaultBaseDelay = 50 * time.Millisecond
	// DefaultMaxDelay caps the exponential growth.
	DefaultMaxDelay = 2 * time.Second
)

// Policy describes one agent's retry behaviour.
type Policy struct {
	// MaxAttempts is the total number of deliveries per logical call,
	// including the first (<= 1 means no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth. Zero means uncapped.
	MaxDelay time.Duration
	// Seed drives the jitter RNG (full jitter: each wait is uniform in
	// [0, backoff]), keeping retry schedules reproducible.
	Seed int64
	// Retryable classifies errors; nil means DefaultRetryable.
	Retryable func(error) bool
	// Sleep waits between attempts; nil means a real Close-interruptible
	// timer. Experiments inject a no-op or clock-advancing sleep.
	Sleep func(time.Duration)
}

// Default returns the default policy with the given jitter seed.
func Default(seed int64) Policy {
	return Policy{
		MaxAttempts: DefaultMaxAttempts,
		BaseDelay:   DefaultBaseDelay,
		MaxDelay:    DefaultMaxDelay,
		Seed:        seed,
	}
}

// DefaultRetryable retries transport-level failures only: any error that
// carries a protocol wire code is the cloud's final answer for the
// request, delivered intact — retrying it cannot change the outcome.
func DefaultRetryable(err error) bool {
	_, isProtocol := protocol.WireCode(err)
	return !isProtocol
}

// instanceSeq numbers wrapper instances so idempotency keys from different
// agents in one process can never collide.
var instanceSeq atomic.Uint64

// Transport wraps a transport.Cloud with the retry policy. It is safe for
// concurrent use; Close is idempotent and aborts any in-flight backoff
// waits.
type Transport struct {
	inner  transport.Cloud
	policy Policy

	rngMu sync.Mutex
	rng   *rand.Rand

	keyPrefix string
	keySeq    atomic.Uint64

	done      chan struct{}
	closeOnce sync.Once
}

var _ transport.Cloud = (*Transport)(nil)

// Wrap builds a retrying view of inner under the policy.
func Wrap(inner transport.Cloud, p Policy) *Transport {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.Retryable == nil {
		p.Retryable = DefaultRetryable
	}
	rng := rand.New(rand.NewSource(p.Seed))
	return &Transport{
		inner:     inner,
		policy:    p,
		rng:       rng,
		keyPrefix: fmt.Sprintf("retry-%d-%08x", instanceSeq.Add(1), rng.Uint32()),
		done:      make(chan struct{}),
	}
}

// Close aborts in-flight backoff waits; subsequent calls still make one
// delivery attempt but never wait to retry.
func (t *Transport) Close() {
	t.closeOnce.Do(func() { close(t.done) })
}

// nextKey mints an idempotency key for one logical mutation. The key pairs
// a monotonic per-wrapper sequence with a draw from the seeded RNG:
// deterministic under a fixed seed (reproducible experiments), but not a
// bare global counter another party can enumerate. The cloud additionally
// pins every key to its request fingerprint, so even a colliding key
// replays nothing.
func (t *Transport) nextKey() string {
	t.rngMu.Lock()
	r := t.rng.Uint64()
	t.rngMu.Unlock()
	return fmt.Sprintf("%s-%d-%016x", t.keyPrefix, t.keySeq.Add(1), r)
}

// backoff returns the jittered wait before retry number attempt (1-based).
func (t *Transport) backoff(attempt int) time.Duration {
	d := t.policy.BaseDelay << (attempt - 1)
	if t.policy.MaxDelay > 0 && (d > t.policy.MaxDelay || d <= 0) {
		d = t.policy.MaxDelay
	}
	if d <= 0 {
		return 0
	}
	t.rngMu.Lock()
	defer t.rngMu.Unlock()
	return time.Duration(t.rng.Int63n(int64(d) + 1))
}

// wait sleeps for the backoff, returning false if the transport closed
// first. With an injected Sleep, done is re-checked after the sleep
// returns, so Close during (or between) injected sleeps still aborts the
// attempt loop — the Close contract holds on the injected-clock path too.
func (t *Transport) wait(d time.Duration) bool {
	if t.policy.Sleep != nil {
		select {
		case <-t.done:
			return false
		default:
		}
		t.policy.Sleep(d)
		select {
		case <-t.done:
			return false
		default:
			return true
		}
	}
	if d <= 0 {
		select {
		case <-t.done:
			return false
		default:
			return true
		}
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-t.done:
		return false
	}
}

// do drives one logical call through the attempt loop.
func do[T any](t *Transport, op string, call func() (T, error)) (T, error) {
	var out T
	var err error
	for attempt := 1; ; attempt++ {
		out, err = call()
		if err == nil || !t.policy.Retryable(err) || attempt >= t.policy.MaxAttempts {
			return out, err
		}
		if !t.wait(t.backoff(attempt)) {
			var zero T
			return zero, fmt.Errorf("retry: %s after %d attempts: %w (last: %w)", op, attempt, ErrClosed, err)
		}
	}
}

// doErr adapts do for response-less operations.
func doErr(t *Transport, op string, call func() error) error {
	_, err := do(t, op, func() (struct{}, error) { return struct{}{}, call() })
	return err
}

// RegisterUser implements transport.Cloud.
func (t *Transport) RegisterUser(req protocol.RegisterUserRequest) error {
	return doErr(t, "register-user", func() error { return t.inner.RegisterUser(req) })
}

// Login implements transport.Cloud.
func (t *Transport) Login(req protocol.LoginRequest) (protocol.LoginResponse, error) {
	return do(t, "login", func() (protocol.LoginResponse, error) { return t.inner.Login(req) })
}

// RequestDeviceToken implements transport.Cloud.
func (t *Transport) RequestDeviceToken(req protocol.DeviceTokenRequest) (protocol.DeviceTokenResponse, error) {
	return do(t, "device-token", func() (protocol.DeviceTokenResponse, error) { return t.inner.RequestDeviceToken(req) })
}

// RequestBindToken implements transport.Cloud.
func (t *Transport) RequestBindToken(req protocol.BindTokenRequest) (protocol.BindTokenResponse, error) {
	return do(t, "bind-token", func() (protocol.BindTokenResponse, error) { return t.inner.RequestBindToken(req) })
}

// HandleStatus implements transport.Cloud. Status messages are naturally
// idempotent — re-marking a device online is a no-op — so they carry no
// key. A redelivered heartbeat can still lose commands drained by a
// delivery whose response vanished; agents re-issue unacknowledged
// commands, mirroring real apps.
func (t *Transport) HandleStatus(req protocol.StatusRequest) (protocol.StatusResponse, error) {
	return do(t, "status", func() (protocol.StatusResponse, error) { return t.inner.HandleStatus(req) })
}

// HandleStatusBatch implements transport.Cloud, stamping a fresh
// idempotency key on every item that lacks one — the same keys across all
// delivery attempts of this logical batch. A batch that was delivered but
// whose response vanished is then answered item-by-item from the cloud's
// replay log on redelivery: commands drained by the lost delivery are
// re-delivered and piggybacked readings are not ingested twice.
func (t *Transport) HandleStatusBatch(req protocol.StatusBatchRequest) (protocol.StatusBatchResponse, error) {
	if len(req.Items) > 0 {
		// Copy the item slice before stamping: the caller may retain (and
		// reuse) its slice, and a retried request must carry the same keys,
		// not freshly minted ones.
		items := make([]protocol.StatusRequest, len(req.Items))
		copy(items, req.Items)
		for i := range items {
			if items[i].IdempotencyKey == "" {
				items[i].IdempotencyKey = t.nextKey()
			}
		}
		req.Items = items
	}
	return do(t, "status-batch", func() (protocol.StatusBatchResponse, error) { return t.inner.HandleStatusBatch(req) })
}

// HandleBind implements transport.Cloud, stamping one idempotency key
// across every delivery attempt of this logical bind.
func (t *Transport) HandleBind(req protocol.BindRequest) (protocol.BindResponse, error) {
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = t.nextKey()
	}
	return do(t, "bind", func() (protocol.BindResponse, error) { return t.inner.HandleBind(req) })
}

// HandleUnbind implements transport.Cloud, stamping one idempotency key
// across every delivery attempt of this logical unbind.
func (t *Transport) HandleUnbind(req protocol.UnbindRequest) error {
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = t.nextKey()
	}
	return doErr(t, "unbind", func() error { return t.inner.HandleUnbind(req) })
}

// HandleControl implements transport.Cloud.
func (t *Transport) HandleControl(req protocol.ControlRequest) (protocol.ControlResponse, error) {
	return do(t, "control", func() (protocol.ControlResponse, error) { return t.inner.HandleControl(req) })
}

// PushUserData implements transport.Cloud.
func (t *Transport) PushUserData(req protocol.PushUserDataRequest) error {
	return doErr(t, "user-data", func() error { return t.inner.PushUserData(req) })
}

// Readings implements transport.Cloud.
func (t *Transport) Readings(req protocol.ReadingsRequest) (protocol.ReadingsResponse, error) {
	return do(t, "readings", func() (protocol.ReadingsResponse, error) { return t.inner.Readings(req) })
}

// HandleShare implements transport.Cloud.
func (t *Transport) HandleShare(req protocol.ShareRequest) error {
	return doErr(t, "share", func() error { return t.inner.HandleShare(req) })
}

// Shares implements transport.Cloud.
func (t *Transport) Shares(req protocol.SharesRequest) (protocol.SharesResponse, error) {
	return do(t, "shares", func() (protocol.SharesResponse, error) { return t.inner.Shares(req) })
}

// HandleDelegate implements transport.Cloud, stamping one idempotency
// key across every delivery attempt of this logical delegation — a
// retried delegate must replay the token the first delivery minted, not
// re-grant.
func (t *Transport) HandleDelegate(req protocol.DelegateRequest) (protocol.DelegateResponse, error) {
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = t.nextKey()
	}
	return do(t, "delegate", func() (protocol.DelegateResponse, error) { return t.inner.HandleDelegate(req) })
}

// HandleRevokeDelegation implements transport.Cloud, stamping one
// idempotency key across every delivery attempt — a redelivered revoke
// must not sever a grant issued after its first delivery.
func (t *Transport) HandleRevokeDelegation(req protocol.RevokeDelegationRequest) error {
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = t.nextKey()
	}
	return doErr(t, "revoke-delegation", func() error { return t.inner.HandleRevokeDelegation(req) })
}

// ListDelegations implements transport.Cloud.
func (t *Transport) ListDelegations(req protocol.ListDelegationsRequest) (protocol.ListDelegationsResponse, error) {
	return do(t, "delegations", func() (protocol.ListDelegationsResponse, error) { return t.inner.ListDelegations(req) })
}

// ShadowState implements transport.Cloud.
func (t *Transport) ShadowState(req protocol.ShadowStateRequest) (protocol.ShadowStateResponse, error) {
	return do(t, "shadow", func() (protocol.ShadowStateResponse, error) { return t.inner.ShadowState(req) })
}
