package httpapi_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/httpapi"
)

// FuzzHTTPBody throws arbitrary bytes at every route: the server must
// answer with a well-formed HTTP status and never panic. When not run
// under `go test -fuzz`, the seed corpus executes as a regular test.
func FuzzHTTPBody(f *testing.F) {
	seeds := []string{
		"", "{}", "{nope", `{"device_id":"x"}`,
		`{"kind":1,"device_id":"` + strings.Repeat("A", 4096) + `"}`,
		`{"user_id":"u","password":"p"}`,
		`[1,2,3]`, `"a string"`, `{"kind":"not-an-int"}`,
		"\x00\x01\x02\xff", `{"device_id":` + strings.Repeat("[", 64) + strings.Repeat("]", 64) + `}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	reg := cloud.NewRegistry()
	if err := reg.Add(cloud.DeviceRecord{ID: "d", FactorySecret: "s"}); err != nil {
		f.Fatal(err)
	}
	svc, err := cloud.NewService(laxDesign(), reg)
	if err != nil {
		f.Fatal(err)
	}
	srv := httptest.NewServer(httpapi.NewServer(svc))
	f.Cleanup(srv.Close)

	routes := []string{
		httpapi.RouteLogin, httpapi.RouteStatus, httpapi.RouteBind,
		httpapi.RouteUnbind, httpapi.RouteControl, httpapi.RouteShadow,
		httpapi.RouteShare,
	}
	f.Fuzz(func(t *testing.T, body string) {
		for _, route := range routes {
			resp, err := http.Post(srv.URL+route, "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatalf("%s: transport error: %v", route, err)
			}
			resp.Body.Close()
			if resp.StatusCode < 200 || resp.StatusCode > 599 {
				t.Fatalf("%s: bogus status %d", route, resp.StatusCode)
			}
		}
	})
}
