package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/iotbind/iotbind/internal/jsonpool"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
)

// DefaultTimeout bounds every request a Client makes unless overridden.
// Without it a stalled server would park the calling agent forever —
// http.DefaultClient has no timeout — and one hung heartbeat would freeze
// a whole emulated fleet.
const DefaultTimeout = 15 * time.Second

// Client talks to a Server over HTTP and implements transport.Cloud, so
// device agents, apps and attackers can run unchanged against a remote
// cloud.
type Client struct {
	baseURL string
	httpc   *http.Client
}

var _ transport.Cloud = (*Client)(nil)

// ClientOption configures a Client.
type ClientOption interface {
	apply(*Client)
}

type clientOptionFunc func(*Client)

func (f clientOptionFunc) apply(c *Client) { f(c) }

// WithHTTPClient overrides the underlying *http.Client. The caller owns
// the client's timeout configuration — no default is imposed on it.
func WithHTTPClient(h *http.Client) ClientOption {
	return clientOptionFunc(func(c *Client) { c.httpc = h })
}

// WithTimeout overrides the per-request timeout on whatever client is in
// use, preserving a custom transport, cookie jar, or redirect policy
// installed by an earlier WithHTTPClient (the client is shallow-cloned, so
// a caller-owned *http.Client is never mutated). Zero disables the timeout
// altogether (the pre-fix behaviour; useful only for debugging).
func WithTimeout(d time.Duration) ClientOption {
	return clientOptionFunc(func(c *Client) {
		clone := *c.httpc
		clone.Timeout = d
		c.httpc = &clone
	})
}

// NewClient creates a client for the cloud at baseURL.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		baseURL: strings.TrimSuffix(baseURL, "/"),
		httpc:   &http.Client{Timeout: DefaultTimeout},
	}
	for _, o := range opts {
		o.apply(c)
	}
	return c
}

// RegisterUser implements transport.Cloud.
func (c *Client) RegisterUser(req protocol.RegisterUserRequest) error {
	var out struct{}
	return c.post(RouteRegisterUser, req, &out)
}

// Login implements transport.Cloud.
func (c *Client) Login(req protocol.LoginRequest) (protocol.LoginResponse, error) {
	var out protocol.LoginResponse
	err := c.post(RouteLogin, req, &out)
	return out, err
}

// RequestDeviceToken implements transport.Cloud.
func (c *Client) RequestDeviceToken(req protocol.DeviceTokenRequest) (protocol.DeviceTokenResponse, error) {
	var out protocol.DeviceTokenResponse
	err := c.post(RouteDeviceToken, req, &out)
	return out, err
}

// RequestBindToken implements transport.Cloud.
func (c *Client) RequestBindToken(req protocol.BindTokenRequest) (protocol.BindTokenResponse, error) {
	var out protocol.BindTokenResponse
	err := c.post(RouteBindToken, req, &out)
	return out, err
}

// HandleStatus implements transport.Cloud.
func (c *Client) HandleStatus(req protocol.StatusRequest) (protocol.StatusResponse, error) {
	var out protocol.StatusResponse
	err := c.post(RouteStatus, req, &out)
	return out, err
}

// HandleStatusBatch implements transport.Cloud: one POST carries the whole
// coalesced batch.
func (c *Client) HandleStatusBatch(req protocol.StatusBatchRequest) (protocol.StatusBatchResponse, error) {
	var out protocol.StatusBatchResponse
	err := c.post(RouteStatusBatch, req, &out)
	return out, err
}

// HandleBind implements transport.Cloud.
func (c *Client) HandleBind(req protocol.BindRequest) (protocol.BindResponse, error) {
	var out protocol.BindResponse
	err := c.post(RouteBind, req, &out)
	return out, err
}

// HandleUnbind implements transport.Cloud.
func (c *Client) HandleUnbind(req protocol.UnbindRequest) error {
	var out struct{}
	return c.post(RouteUnbind, req, &out)
}

// HandleControl implements transport.Cloud.
func (c *Client) HandleControl(req protocol.ControlRequest) (protocol.ControlResponse, error) {
	var out protocol.ControlResponse
	err := c.post(RouteControl, req, &out)
	return out, err
}

// PushUserData implements transport.Cloud.
func (c *Client) PushUserData(req protocol.PushUserDataRequest) error {
	var out struct{}
	return c.post(RouteUserData, req, &out)
}

// Readings implements transport.Cloud.
func (c *Client) Readings(req protocol.ReadingsRequest) (protocol.ReadingsResponse, error) {
	var out protocol.ReadingsResponse
	err := c.post(RouteReadings, req, &out)
	return out, err
}

// HandleShare implements transport.Cloud.
func (c *Client) HandleShare(req protocol.ShareRequest) error {
	var out struct{}
	return c.post(RouteShare, req, &out)
}

// Shares implements transport.Cloud.
func (c *Client) Shares(req protocol.SharesRequest) (protocol.SharesResponse, error) {
	var out protocol.SharesResponse
	err := c.post(RouteShares, req, &out)
	return out, err
}

// HandleDelegate implements transport.Cloud.
func (c *Client) HandleDelegate(req protocol.DelegateRequest) (protocol.DelegateResponse, error) {
	var out protocol.DelegateResponse
	err := c.post(RouteDelegate, req, &out)
	return out, err
}

// HandleRevokeDelegation implements transport.Cloud.
func (c *Client) HandleRevokeDelegation(req protocol.RevokeDelegationRequest) error {
	var out struct{}
	return c.post(RouteRevokeDeleg, req, &out)
}

// ListDelegations implements transport.Cloud.
func (c *Client) ListDelegations(req protocol.ListDelegationsRequest) (protocol.ListDelegationsResponse, error) {
	var out protocol.ListDelegationsResponse
	err := c.post(RouteDelegations, req, &out)
	return out, err
}

// ShadowState implements transport.Cloud.
func (c *Client) ShadowState(req protocol.ShadowStateRequest) (protocol.ShadowStateResponse, error) {
	var out protocol.ShadowStateResponse
	err := c.post(RouteShadow, req, &out)
	return out, err
}

func (c *Client) post(route string, in, out any) error {
	// Encode the request into a pooled buffer instead of json.Marshal's
	// fresh slice. The buffer is released only after the response has been
	// fully read: by then the server handler has consumed the request body,
	// so the transport is done reading from our reader.
	reqBuf := jsonpool.Get()
	defer reqBuf.Put()
	if err := reqBuf.Encode(in); err != nil {
		return fmt.Errorf("httpapi: encode %s: %w", route, err)
	}
	resp, err := c.httpc.Post(c.baseURL+route, "application/json", bytes.NewReader(reqBuf.Bytes()))
	if err != nil {
		// Network-level failures (timeouts, refused connections, resets)
		// wrap transport.ErrUnavailable so agents and retry policies
		// classify them exactly like in-process injected faults.
		return fmt.Errorf("httpapi: post %s: %w: %w", route, transport.ErrUnavailable, err)
	}
	defer resp.Body.Close()

	respBuf := jsonpool.Get()
	defer respBuf.Put()
	if _, err := respBuf.Writer().ReadFrom(io.LimitReader(resp.Body, maxBody)); err != nil {
		return fmt.Errorf("httpapi: read %s: %w", route, err)
	}
	data := respBuf.Bytes()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err != nil || eb.Code == "" {
			return fmt.Errorf("httpapi: %s: HTTP %d: %s", route, resp.StatusCode, string(data))
		}
		if sentinel, ok := protocol.FromWireCode(eb.Code); ok {
			return fmt.Errorf("httpapi: %s: %s: %w", route, eb.Message, sentinel)
		}
		return fmt.Errorf("httpapi: %s: %s (%s)", route, eb.Message, eb.Code)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("httpapi: decode %s: %w", route, err)
	}
	return nil
}
