package httpapi_test

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/iotbind/iotbind/internal/httpapi"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
)

// TestClientTimeoutAgainstStalledServer proves the default client cannot
// be parked forever by a hung cloud: the request fails with a typed
// transport error once the (shortened) timeout fires, and the goroutine
// the stalled request occupied is reclaimed.
func TestClientTimeoutAgainstStalledServer(t *testing.T) {
	release := make(chan struct{})
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hold every request open until the test ends
	}))
	defer stalled.Close()
	defer close(release)

	before := runtime.NumGoroutine()
	client := httpapi.NewClient(stalled.URL, httpapi.WithTimeout(50*time.Millisecond))

	start := time.Now()
	_, err := client.Login(protocol.LoginRequest{UserID: "u", Password: "p"})
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("request against stalled server succeeded")
	}
	if !errors.Is(err, transport.ErrUnavailable) {
		t.Errorf("error = %v, want ErrUnavailable so retry layers classify it", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("request took %v; the timeout never fired", elapsed)
	}

	// The aborted request's goroutines must drain — a leak here would
	// accumulate one parked goroutine per stalled call.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after timeout-aborted request", before, runtime.NumGoroutine())
}

// TestClientDefaultTimeoutConfigured proves NewClient no longer inherits
// http.DefaultClient's unbounded behaviour.
func TestClientDefaultTimeoutConfigured(t *testing.T) {
	if httpapi.DefaultTimeout <= 0 {
		t.Fatalf("DefaultTimeout = %v, want a positive bound", httpapi.DefaultTimeout)
	}
}

// markingTransport is a RoundTripper that records it was used and answers
// every request with an empty JSON object.
type markingTransport struct{ used bool }

func (m *markingTransport) RoundTrip(*http.Request) (*http.Response, error) {
	m.used = true
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(strings.NewReader("{}")),
	}, nil
}

// TestWithTimeoutPreservesCustomClient proves WithTimeout composes with
// WithHTTPClient instead of replacing it: the custom client's transport
// survives, and the caller-owned *http.Client is not mutated.
func TestWithTimeoutPreservesCustomClient(t *testing.T) {
	mt := &markingTransport{}
	custom := &http.Client{Transport: mt}

	client := httpapi.NewClient("http://cloud.invalid",
		httpapi.WithHTTPClient(custom), httpapi.WithTimeout(5*time.Second))
	if err := client.RegisterUser(protocol.RegisterUserRequest{UserID: "u", Password: "p"}); err != nil {
		t.Fatalf("request through custom transport: %v", err)
	}
	if !mt.used {
		t.Error("WithTimeout discarded the custom client's transport")
	}
	if custom.Timeout != 0 {
		t.Errorf("caller's client mutated: Timeout = %v, want untouched 0", custom.Timeout)
	}
}

// TestOversizedBodyRoundTripsAsPayloadTooLarge proves the server answers
// an over-limit body with 413 and the distinct payload_too_large code, and
// the client surfaces it as protocol.ErrPayloadTooLarge — a final error
// retry layers refuse to redeliver.
func TestOversizedBodyRoundTripsAsPayloadTooLarge(t *testing.T) {
	srv, client := newHTTPCloud(t, laxDesign())

	huge := `{"user_id":"` + strings.Repeat("x", 1<<20) + `"}`
	resp, err := http.Post(srv.URL+httpapi.RouteLogin, "application/json", bytes.NewReader([]byte(huge)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}

	// The typed client maps the wire code back to the sentinel...
	_, err = client.Login(protocol.LoginRequest{UserID: strings.Repeat("x", 1<<20), Password: "p"})
	if !errors.Is(err, protocol.ErrPayloadTooLarge) {
		t.Errorf("client error = %v, want ErrPayloadTooLarge", err)
	}
	// ...which the default retry classifier treats as final.
	if err != nil {
		if _, isWire := protocol.WireCode(err); !isWire {
			t.Error("payload_too_large lost its wire code on the way back")
		}
	}
}
