package httpapi_test

import (
	"errors"
	"strings"
	"testing"

	"github.com/iotbind/iotbind/internal/protocol"
)

// TestStatusBatchOverHTTP round-trips a mixed batch through the HTTP
// boundary: the envelope succeeds, per-item results stay index-aligned,
// and per-item errors keep their wire codes for errors.Is.
func TestStatusBatchOverHTTP(t *testing.T) {
	_, client := newHTTPCloud(t, laxDesign())

	resp, err := client.HandleStatusBatch(protocol.StatusBatchRequest{Items: []protocol.StatusRequest{
		{Kind: protocol.StatusRegister, DeviceID: devID},
		{Kind: protocol.StatusHeartbeat, DeviceID: "ghost"},
		{Kind: protocol.StatusHeartbeat, DeviceID: devID,
			Readings: []protocol.Reading{{Name: "power_w", Value: 5}}},
	}})
	if err != nil {
		t.Fatalf("batch over HTTP: %v", err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(resp.Results))
	}
	if err := resp.Results[0].Err(); err != nil {
		t.Errorf("item 0 = %v, want success", err)
	}
	if err := resp.Results[1].Err(); !errors.Is(err, protocol.ErrUnknownDevice) {
		t.Errorf("item 1 = %v, want ErrUnknownDevice across the wire", err)
	}
	if err := resp.Results[2].Err(); err != nil {
		t.Errorf("item 2 = %v, want success", err)
	}
	if got := resp.FirstError(); !errors.Is(got, protocol.ErrUnknownDevice) {
		t.Errorf("FirstError = %v, want the item-1 error", got)
	}
}

// TestStatusBatchOversizedBodyOverHTTP proves the pooled decode path still
// enforces the body bound: a batch past 1 MiB is answered with the
// payload_too_large wire code, not a hangup.
func TestStatusBatchOversizedBodyOverHTTP(t *testing.T) {
	_, client := newHTTPCloud(t, laxDesign())

	_, err := client.HandleStatusBatch(protocol.StatusBatchRequest{Items: []protocol.StatusRequest{
		{Kind: protocol.StatusHeartbeat, DeviceID: devID, Firmware: strings.Repeat("v", 2<<20)},
	}})
	if !errors.Is(err, protocol.ErrPayloadTooLarge) {
		t.Errorf("oversized batch = %v, want ErrPayloadTooLarge", err)
	}
}
