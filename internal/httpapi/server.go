// Package httpapi exposes an emulated IoT cloud as an HTTP/JSON service
// and provides a client that implements the same transport.Cloud interface
// the in-process emulation uses, so devices, apps and attackers can run
// against a cloud across a real network boundary. The server assigns each
// request's source address from the connection — senders cannot choose it,
// matching how the source-IP co-location defence observes addresses.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"

	"github.com/iotbind/iotbind/internal/jsonpool"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
)

// API routes.
const (
	RouteRegisterUser = "/api/v1/register-user"
	RouteLogin        = "/api/v1/login"
	RouteDeviceToken  = "/api/v1/device-token"
	RouteBindToken    = "/api/v1/bind-token"
	RouteStatus       = "/api/v1/status"
	RouteStatusBatch  = "/api/v1/status-batch"
	RouteBind         = "/api/v1/bind"
	RouteUnbind       = "/api/v1/unbind"
	RouteControl      = "/api/v1/control"
	RouteUserData     = "/api/v1/user-data"
	RouteReadings     = "/api/v1/readings"
	RouteShare        = "/api/v1/share"
	RouteShares       = "/api/v1/shares"
	RouteDelegate     = "/api/v1/delegate"
	RouteRevokeDeleg  = "/api/v1/revoke-delegation"
	RouteDelegations  = "/api/v1/delegations"
	RouteShadow       = "/api/v1/shadow"
)

// maxBody bounds a request or response body on this front end.
const maxBody = 1 << 20

// errorBody is the JSON error envelope.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// statusForCode attaches HTTP statuses to the shared protocol wire codes.
var statusForCode = map[string]int{
	"auth_failed":       http.StatusUnauthorized,
	"unknown_device":    http.StatusNotFound,
	"already_bound":     http.StatusConflict,
	"not_bound":         http.StatusConflict,
	"not_permitted":     http.StatusForbidden,
	"unsupported":       http.StatusBadRequest,
	"outside_window":    http.StatusForbidden,
	"device_offline":    http.StatusServiceUnavailable,
	"user_exists":       http.StatusConflict,
	"payload_too_large": http.StatusRequestEntityTooLarge,
	"bad_request":       http.StatusBadRequest,
}

// Server adapts a transport.Cloud to HTTP.
type Server struct {
	cloud transport.Cloud
	mux   *http.ServeMux
}

var _ http.Handler = (*Server)(nil)

// NewServer wraps a cloud implementation (typically *cloud.Service).
func NewServer(cloud transport.Cloud) *Server {
	s := &Server{cloud: cloud, mux: http.NewServeMux()}
	s.mux.HandleFunc(RouteRegisterUser, s.handleRegisterUser)
	s.mux.HandleFunc(RouteLogin, s.handleLogin)
	s.mux.HandleFunc(RouteDeviceToken, s.handleDeviceToken)
	s.mux.HandleFunc(RouteBindToken, s.handleBindToken)
	s.mux.HandleFunc(RouteStatus, s.handleStatus)
	s.mux.HandleFunc(RouteStatusBatch, s.handleStatusBatch)
	s.mux.HandleFunc(RouteBind, s.handleBind)
	s.mux.HandleFunc(RouteUnbind, s.handleUnbind)
	s.mux.HandleFunc(RouteControl, s.handleControl)
	s.mux.HandleFunc(RouteUserData, s.handleUserData)
	s.mux.HandleFunc(RouteReadings, s.handleReadings)
	s.mux.HandleFunc(RouteShare, s.handleShare)
	s.mux.HandleFunc(RouteShares, s.handleShares)
	s.mux.HandleFunc(RouteDelegate, s.handleDelegate)
	s.mux.HandleFunc(RouteRevokeDeleg, s.handleRevokeDelegation)
	s.mux.HandleFunc(RouteDelegations, s.handleDelegations)
	s.mux.HandleFunc(RouteShadow, s.handleShadow)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleRegisterUser(w http.ResponseWriter, r *http.Request) {
	var req protocol.RegisterUserRequest
	if !decode(w, r, &req) {
		return
	}
	respond(w, struct{}{}, s.cloud.RegisterUser(req))
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	var req protocol.LoginRequest
	if !decode(w, r, &req) {
		return
	}
	resp, err := s.cloud.Login(req)
	respond(w, resp, err)
}

func (s *Server) handleDeviceToken(w http.ResponseWriter, r *http.Request) {
	var req protocol.DeviceTokenRequest
	if !decode(w, r, &req) {
		return
	}
	resp, err := s.cloud.RequestDeviceToken(req)
	respond(w, resp, err)
}

func (s *Server) handleBindToken(w http.ResponseWriter, r *http.Request) {
	var req protocol.BindTokenRequest
	if !decode(w, r, &req) {
		return
	}
	resp, err := s.cloud.RequestBindToken(req)
	respond(w, resp, err)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	var req protocol.StatusRequest
	if !decode(w, r, &req) {
		return
	}
	req.SourceIP = sourceIP(r)
	resp, err := s.cloud.HandleStatus(req)
	respond(w, resp, err)
}

func (s *Server) handleStatusBatch(w http.ResponseWriter, r *http.Request) {
	var req protocol.StatusBatchRequest
	if !decode(w, r, &req) {
		return
	}
	req.SourceIP = sourceIP(r)
	resp, err := s.cloud.HandleStatusBatch(req)
	respond(w, resp, err)
}

func (s *Server) handleBind(w http.ResponseWriter, r *http.Request) {
	var req protocol.BindRequest
	if !decode(w, r, &req) {
		return
	}
	req.SourceIP = sourceIP(r)
	resp, err := s.cloud.HandleBind(req)
	respond(w, resp, err)
}

func (s *Server) handleUnbind(w http.ResponseWriter, r *http.Request) {
	var req protocol.UnbindRequest
	if !decode(w, r, &req) {
		return
	}
	req.SourceIP = sourceIP(r)
	respond(w, struct{}{}, s.cloud.HandleUnbind(req))
}

func (s *Server) handleControl(w http.ResponseWriter, r *http.Request) {
	var req protocol.ControlRequest
	if !decode(w, r, &req) {
		return
	}
	req.SourceIP = sourceIP(r)
	resp, err := s.cloud.HandleControl(req)
	respond(w, resp, err)
}

func (s *Server) handleUserData(w http.ResponseWriter, r *http.Request) {
	var req protocol.PushUserDataRequest
	if !decode(w, r, &req) {
		return
	}
	respond(w, struct{}{}, s.cloud.PushUserData(req))
}

func (s *Server) handleReadings(w http.ResponseWriter, r *http.Request) {
	var req protocol.ReadingsRequest
	if !decode(w, r, &req) {
		return
	}
	resp, err := s.cloud.Readings(req)
	respond(w, resp, err)
}

func (s *Server) handleShare(w http.ResponseWriter, r *http.Request) {
	var req protocol.ShareRequest
	if !decode(w, r, &req) {
		return
	}
	respond(w, struct{}{}, s.cloud.HandleShare(req))
}

func (s *Server) handleShares(w http.ResponseWriter, r *http.Request) {
	var req protocol.SharesRequest
	if !decode(w, r, &req) {
		return
	}
	resp, err := s.cloud.Shares(req)
	respond(w, resp, err)
}

func (s *Server) handleDelegate(w http.ResponseWriter, r *http.Request) {
	var req protocol.DelegateRequest
	if !decode(w, r, &req) {
		return
	}
	resp, err := s.cloud.HandleDelegate(req)
	respond(w, resp, err)
}

func (s *Server) handleRevokeDelegation(w http.ResponseWriter, r *http.Request) {
	var req protocol.RevokeDelegationRequest
	if !decode(w, r, &req) {
		return
	}
	respond(w, struct{}{}, s.cloud.HandleRevokeDelegation(req))
}

func (s *Server) handleDelegations(w http.ResponseWriter, r *http.Request) {
	var req protocol.ListDelegationsRequest
	if !decode(w, r, &req) {
		return
	}
	resp, err := s.cloud.ListDelegations(req)
	respond(w, resp, err)
}

func (s *Server) handleShadow(w http.ResponseWriter, r *http.Request) {
	var req protocol.ShadowStateRequest
	if !decode(w, r, &req) {
		return
	}
	resp, err := s.cloud.ShadowState(req)
	respond(w, resp, err)
}

// decode parses the POST body; it writes the error response itself and
// returns false on failure.
func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST required")
		return false
	}
	// Drain the body into a pooled buffer instead of io.ReadAll's fresh,
	// growth-by-doubling slice: the steady-state heartbeat path reuses one
	// backing array per concurrent request.
	buf := jsonpool.Get()
	defer buf.Put()
	if _, err := buf.Writer().ReadFrom(http.MaxBytesReader(w, r.Body, maxBody)); err != nil {
		// An oversized body is the sender's mistake, not an unreadable
		// one: answer 413 with the distinct payload_too_large code so the
		// client surfaces protocol.ErrPayloadTooLarge (which retry layers
		// know not to redeliver) instead of a generic bad_request.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "payload_too_large",
				fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "bad_request", "unreadable body")
		return false
	}
	if err := json.Unmarshal(buf.Bytes(), into); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("malformed JSON: %v", err))
		return false
	}
	return true
}

// respond writes either the success payload or the mapped error.
func respond(w http.ResponseWriter, payload any, err error) {
	if err != nil {
		if code, ok := protocol.WireCode(err); ok {
			status, known := statusForCode[code]
			if !known {
				status = http.StatusBadRequest
			}
			writeError(w, status, code, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	buf := jsonpool.Get()
	defer buf.Put()
	if encodeErr := buf.Encode(payload); encodeErr != nil {
		writeError(w, http.StatusInternalServerError, "internal", encodeErr.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

func writeError(w http.ResponseWriter, status int, code, message string) {
	buf := jsonpool.Get()
	defer buf.Put()
	_ = buf.Encode(errorBody{Code: code, Message: message})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// sourceIP extracts the peer address the cloud treats as the sender's
// public IP.
func sourceIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
