package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/iotbind/iotbind/internal/protocol"
)

// nullResponseWriter discards the body; the header map is preallocated so
// repeated runs measure the codec, not first-use map growth.
type nullResponseWriter struct{ h http.Header }

func (w nullResponseWriter) Header() http.Header         { return w.h }
func (w nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w nullResponseWriter) WriteHeader(int)             {}

func statusResponseFixture() protocol.StatusResponse {
	return protocol.StatusResponse{
		Commands: []protocol.Command{{ID: "c1", Name: "turn_on"}},
		UserData: []protocol.UserData{{Kind: "schedule", Body: "on 08:00 off 22:00"}},
	}
}

// TestStatusEncodeAllocations pins the pooled encode path: serializing a
// status response must stay within a small constant allocation budget
// instead of regressing to per-call buffer and encoder construction.
func TestStatusEncodeAllocations(t *testing.T) {
	w := nullResponseWriter{h: make(http.Header)}
	resp := statusResponseFixture()

	avg := testing.AllocsPerRun(200, func() {
		respond(w, resp, nil)
	})
	// Measured ~2 (interface boxing + encoder internals); 10 leaves slack
	// while still catching a return to one-json.Marshal-per-call (which
	// also buffers the whole body a second time).
	if avg > 10 {
		t.Errorf("status encode = %.1f allocs/op, want <= 10", avg)
	}
}

// TestStatusDecodeAllocations pins the pooled decode path: draining and
// unmarshaling a status request must not regress to io.ReadAll-per-call
// growth.
func TestStatusDecodeAllocations(t *testing.T) {
	body, err := json.Marshal(protocol.StatusRequest{
		Kind: protocol.StatusHeartbeat, DeviceID: "AA:BB:CC:00:00:01",
		Readings: []protocol.Reading{{Name: "power_w", Value: 7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := nullResponseWriter{h: make(http.Header)}
	reader := bytes.NewReader(body)
	req := httptest.NewRequest(http.MethodPost, RouteStatus, nil)
	req.Body = io.NopCloser(reader)

	avg := testing.AllocsPerRun(200, func() {
		reader.Reset(body)
		var out protocol.StatusRequest
		if !decode(w, req, &out) {
			t.Fatal("decode failed")
		}
	})
	// Measured ~12 (MaxBytesReader wrapper + unmarshal of the request's
	// strings and readings); 20 is the regression tripwire.
	if avg > 20 {
		t.Errorf("status decode = %.1f allocs/op, want <= 20", avg)
	}
}
