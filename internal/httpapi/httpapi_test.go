package httpapi_test

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/iotbind/iotbind/internal/attacker"
	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/device"
	"github.com/iotbind/iotbind/internal/httpapi"
	"github.com/iotbind/iotbind/internal/localnet"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
)

const (
	devID     = "AA:BB:CC:00:00:77"
	devSecret = "factory-secret-http"
)

func laxDesign() core.DesignSpec {
	return core.DesignSpec{
		Name:                 "http-lax",
		DeviceAuth:           core.AuthDevID,
		Binding:              core.BindACLApp,
		UnbindForms:          []core.UnbindForm{core.UnbindDevIDUserToken},
		CheckBoundUserOnBind: true,
		// CheckBoundUserOnUnbind intentionally false: the A3-2 flaw,
		// exercised over the wire below.
	}
}

func newHTTPCloud(t *testing.T, design core.DesignSpec) (*httptest.Server, *httpapi.Client) {
	t.Helper()
	reg := cloud.NewRegistry()
	if err := reg.Add(cloud.DeviceRecord{ID: devID, FactorySecret: devSecret, Model: "plug"}); err != nil {
		t.Fatal(err)
	}
	svc, err := cloud.NewService(design, reg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(httpapi.NewServer(svc))
	t.Cleanup(srv.Close)
	return srv, httpapi.NewClient(srv.URL)
}

// TestFullLifecycleOverHTTP runs login, binding, heartbeat, control and
// readings through the HTTP boundary.
func TestFullLifecycleOverHTTP(t *testing.T) {
	_, client := newHTTPCloud(t, laxDesign())

	if err := client.RegisterUser(protocol.RegisterUserRequest{UserID: "u", Password: "p"}); err != nil {
		t.Fatal(err)
	}
	login, err := client.Login(protocol.LoginRequest{UserID: "u", Password: "p"})
	if err != nil {
		t.Fatal(err)
	}

	// A real device agent over the HTTP transport.
	home := localnet.NewNetwork("home", "203.0.113.7")
	dev, err := device.New(device.Config{
		ID: devID, FactorySecret: devSecret, LocalName: "plug", Model: "plug",
	}, laxDesign(), client)
	if err != nil {
		t.Fatal(err)
	}
	if err := home.Join(dev); err != nil {
		t.Fatal(err)
	}
	if err := dev.Provision(localnet.Provisioning{WiFiSSID: "home", WiFiPassword: "pw"}); err != nil {
		t.Fatal(err)
	}

	if _, err := client.HandleBind(protocol.BindRequest{DeviceID: devID, UserToken: login.UserToken, Sender: core.SenderApp}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.HandleControl(protocol.ControlRequest{
		DeviceID: devID, UserToken: login.UserToken,
		Command: protocol.Command{ID: "c1", Name: "turn_on"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if got := dev.Executed(); len(got) != 1 || got[0].Name != "turn_on" {
		t.Errorf("executed = %+v", got)
	}

	dev.QueueReading("power_w", 11)
	if err := dev.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	readings, err := client.Readings(protocol.ReadingsRequest{DeviceID: devID, UserToken: login.UserToken})
	if err != nil {
		t.Fatal(err)
	}
	if len(readings.Readings) != 1 || readings.Readings[0].Value != 11 {
		t.Errorf("readings = %+v", readings.Readings)
	}

	st, err := client.ShadowState(protocol.ShadowStateRequest{DeviceID: devID})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != core.StateControl {
		t.Errorf("shadow = %v, want control", st.State)
	}
}

// TestAttackOverHTTP launches the A3-2 unbinding attack through the wire:
// the attacker toolkit runs against the HTTP client transport.
func TestAttackOverHTTP(t *testing.T) {
	_, client := newHTTPCloud(t, laxDesign())

	// Victim binds.
	if err := client.RegisterUser(protocol.RegisterUserRequest{UserID: "victim", Password: "p"}); err != nil {
		t.Fatal(err)
	}
	login, err := client.Login(protocol.LoginRequest{UserID: "victim", Password: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.HandleStatus(protocol.StatusRequest{Kind: protocol.StatusRegister, DeviceID: devID}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.HandleBind(protocol.BindRequest{DeviceID: devID, UserToken: login.UserToken, Sender: core.SenderApp}); err != nil {
		t.Fatal(err)
	}

	atk, err := attacker.New("attacker", "pw", laxDesign(), client)
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.Prepare(); err != nil {
		t.Fatal(err)
	}
	if err := atk.ForgeUnbind(devID, core.UnbindDevIDUserToken); err != nil {
		t.Fatalf("A3-2 over HTTP: %v", err)
	}
	st, err := client.ShadowState(protocol.ShadowStateRequest{DeviceID: devID})
	if err != nil {
		t.Fatal(err)
	}
	if st.BoundUser != "" {
		t.Errorf("binding survived: %+v", st)
	}
}

// TestErrorMappingAcrossWire checks that protocol sentinel errors survive
// the HTTP round trip for errors.Is.
func TestErrorMappingAcrossWire(t *testing.T) {
	_, client := newHTTPCloud(t, laxDesign())

	if _, err := client.Login(protocol.LoginRequest{UserID: "ghost", Password: "x"}); !errors.Is(err, protocol.ErrAuthFailed) {
		t.Errorf("login error = %v, want ErrAuthFailed", err)
	}
	if _, err := client.HandleStatus(protocol.StatusRequest{Kind: protocol.StatusRegister, DeviceID: "nope"}); !errors.Is(err, protocol.ErrUnknownDevice) {
		t.Errorf("status error = %v, want ErrUnknownDevice", err)
	}
	if err := client.RegisterUser(protocol.RegisterUserRequest{UserID: "u", Password: "p"}); err != nil {
		t.Fatal(err)
	}
	if err := client.RegisterUser(protocol.RegisterUserRequest{UserID: "u", Password: "p"}); !errors.Is(err, protocol.ErrUserExists) {
		t.Errorf("register error = %v, want ErrUserExists", err)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	srv, _ := newHTTPCloud(t, laxDesign())

	// GET is rejected.
	resp, err := http.Get(srv.URL + httpapi.RouteLogin)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}

	// Malformed JSON is rejected.
	resp, err = http.Post(srv.URL+httpapi.RouteLogin, "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d, want 400", resp.StatusCode)
	}
}

// TestClientImplementsTransport pins the interface contract.
func TestClientImplementsTransport(t *testing.T) {
	var _ transport.Cloud = (*httpapi.Client)(nil)
}
