package device_test

import (
	"errors"
	"testing"
	"time"

	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/device"
	"github.com/iotbind/iotbind/internal/localnet"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/retry"
	"github.com/iotbind/iotbind/internal/transport"
)

// provision brings a device online, failing the test on error.
func provision(t *testing.T, dev *device.Device) {
	t.Helper()
	if err := dev.Provision(localnet.Provisioning{WiFiSSID: "home", WiFiPassword: "pw"}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchingCountTrigger proves heartbeats queue until the batch fills,
// then deliver as exactly one StatusBatch envelope.
func TestBatchingCountTrigger(t *testing.T) {
	d := design(core.AuthDevID, core.BindACLApp)
	svc, _ := newCloud(t, d)
	dev := newDevice(t, d, svc, device.WithBatching(3, 0))
	provision(t, dev)
	base := svc.Stats().StatusAccepted // the registration

	for i := 0; i < 2; i++ {
		if err := dev.Heartbeat(); err != nil {
			t.Fatal(err)
		}
	}
	if got := dev.PendingBatch(); got != 2 {
		t.Fatalf("PendingBatch = %d, want 2", got)
	}
	if got := svc.Stats().StatusAccepted; got != base {
		t.Fatalf("heartbeats delivered early: accepted = %d, want %d", got, base)
	}

	// The third heartbeat trips the count trigger.
	if err := dev.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if dev.PendingBatch() != 0 || st.StatusAccepted != base+3 || st.StatusBatches != 1 {
		t.Errorf("after flush: pending=%d accepted=%d batches=%d, want 0/%d/1",
			dev.PendingBatch(), st.StatusAccepted, st.StatusBatches, base+3)
	}
}

// TestBatchingAgeTrigger proves the flush-interval trigger runs off the
// injected clock: a queue whose oldest entry is flushInterval old flushes
// on the next Heartbeat even when far from full.
func TestBatchingAgeTrigger(t *testing.T) {
	d := design(core.AuthDevID, core.BindACLApp)
	svc, _ := newCloud(t, d)
	now := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	dev := newDevice(t, d, svc,
		device.WithBatching(100, 5*time.Second),
		device.WithClock(func() time.Time { return now }))
	provision(t, dev)
	base := svc.Stats().StatusAccepted

	if err := dev.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Second)
	if err := dev.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if got := dev.PendingBatch(); got != 2 {
		t.Fatalf("PendingBatch before interval = %d, want 2", got)
	}

	// 5s after the oldest queued message, the next heartbeat flushes all 3.
	now = now.Add(3 * time.Second)
	if err := dev.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if dev.PendingBatch() != 0 || st.StatusAccepted != base+3 || st.StatusBatches != 1 {
		t.Errorf("after age flush: pending=%d accepted=%d batches=%d, want 0/%d/1",
			dev.PendingBatch(), st.StatusAccepted, st.StatusBatches, base+3)
	}
}

// TestExplicitFlush proves Flush delivers the queue immediately and is a
// no-op when nothing is queued.
func TestExplicitFlush(t *testing.T) {
	d := design(core.AuthDevID, core.BindACLApp)
	svc, _ := newCloud(t, d)
	dev := newDevice(t, d, svc, device.WithBatching(10, 0))
	provision(t, dev)
	base := svc.Stats()

	if err := dev.Flush(); err != nil {
		t.Fatalf("empty flush = %v", err)
	}
	if got := svc.Stats().StatusBatches; got != base.StatusBatches {
		t.Fatalf("empty flush sent a batch envelope")
	}

	if err := dev.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Flush(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if dev.PendingBatch() != 0 || st.StatusAccepted != base.StatusAccepted+1 || st.StatusBatches != base.StatusBatches+1 {
		t.Errorf("after flush: pending=%d accepted=%d batches=%d", dev.PendingBatch(), st.StatusAccepted, st.StatusBatches)
	}
}

// TestRegisterFlushesQueueFirst proves a registration (PressButton here)
// delivers the queued heartbeats before itself, preserving the order the
// device produced its messages.
func TestRegisterFlushesQueueFirst(t *testing.T) {
	d := design(core.AuthDevID, core.BindACLApp)
	svc, userToken := newCloud(t, d)
	dev := newDevice(t, d, svc, device.WithBatching(10, 0))
	provision(t, dev)
	if _, err := svc.HandleBind(protocol.BindRequest{DeviceID: devID, UserToken: userToken, Sender: core.SenderApp}); err != nil {
		t.Fatal(err)
	}

	dev.QueueReading("power_w", 3)
	if err := dev.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if err := dev.PressButton(); err != nil {
		t.Fatal(err)
	}
	if got := dev.PendingBatch(); got != 0 {
		t.Errorf("PendingBatch after register = %d, want 0 (queue delivered first)", got)
	}
	st := svc.Stats()
	if st.StatusBatches != 1 {
		t.Errorf("StatusBatches = %d, want 1", st.StatusBatches)
	}
	r, err := svc.Readings(protocol.ReadingsRequest{DeviceID: devID, UserToken: userToken})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Readings) != 1 || r.Readings[0].Value != 3 {
		t.Errorf("readings = %+v, want the queued sample delivered", r.Readings)
	}
}

// TestResetClearsBatchQueue proves a factory reset drops queued heartbeats
// instead of leaking them to the next owner's session.
func TestResetClearsBatchQueue(t *testing.T) {
	d := design(core.AuthDevID, core.BindACLApp)
	svc, _ := newCloud(t, d)
	dev := newDevice(t, d, svc, device.WithBatching(10, 0))
	provision(t, dev)

	if err := dev.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if got := dev.PendingBatch(); got != 1 {
		t.Fatalf("PendingBatch = %d, want 1", got)
	}
	dev.Reset()
	if got := dev.PendingBatch(); got != 0 {
		t.Errorf("PendingBatch after reset = %d, want 0", got)
	}
}

// scriptedCloud overrides the batch (and status) path so device-side merge
// behaviour can be driven with outcomes a real cloud would not produce on
// demand. The embedded nil transport.Cloud panics on anything unscripted,
// which doubles as an assertion that only the expected calls happen.
type scriptedCloud struct {
	transport.Cloud
	batchResp protocol.StatusBatchResponse
	batchErr  error
	batches   int
}

func (s *scriptedCloud) HandleStatus(protocol.StatusRequest) (protocol.StatusResponse, error) {
	return protocol.StatusResponse{}, nil
}

func (s *scriptedCloud) HandleStatusBatch(protocol.StatusBatchRequest) (protocol.StatusBatchResponse, error) {
	s.batches++
	return s.batchResp, s.batchErr
}

func newScriptedDevice(t *testing.T, sc *scriptedCloud) *device.Device {
	t.Helper()
	d := design(core.AuthDevID, core.BindACLApp)
	dev, err := device.New(device.Config{
		ID: devID, FactorySecret: devSecret, LocalName: "plug", Model: "plug",
	}, d, sc, device.WithBatching(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	provision(t, dev)
	return dev
}

// TestBatchPartialFailureMergesAcceptedItems proves a flush with one
// rejected item still ingests the accepted items' commands and data, and
// reports the first rejection.
func TestBatchPartialFailureMergesAcceptedItems(t *testing.T) {
	sc := &scriptedCloud{batchResp: protocol.StatusBatchResponse{Results: []protocol.StatusBatchResult{
		{Response: protocol.StatusResponse{
			Commands: []protocol.Command{{ID: "c1", Name: "turn_on"}},
			UserData: []protocol.UserData{{Kind: "schedule", Body: "on 08:00"}},
		}},
		{Code: "auth_failed", Message: "stale session token"},
	}}}
	dev := newScriptedDevice(t, sc)

	if err := dev.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	err := dev.Heartbeat() // fills the batch of 2, flushes
	if !errors.Is(err, protocol.ErrAuthFailed) {
		t.Fatalf("partial failure = %v, want ErrAuthFailed from item 1", err)
	}
	if got := dev.Executed(); len(got) != 1 || got[0].ID != "c1" {
		t.Errorf("Executed = %+v, want the accepted item's command merged", got)
	}
	if got := dev.ReceivedData(); len(got) != 1 || got[0].Body != "on 08:00" {
		t.Errorf("ReceivedData = %+v, want the accepted item's data merged", got)
	}
}

// TestBatchResultCountMismatch proves a server answering with the wrong
// result count surfaces the framing error, not a silent partial merge.
func TestBatchResultCountMismatch(t *testing.T) {
	sc := &scriptedCloud{batchResp: protocol.StatusBatchResponse{
		Results: []protocol.StatusBatchResult{{}},
	}}
	dev := newScriptedDevice(t, sc)

	if err := dev.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Heartbeat(); !errors.Is(err, protocol.ErrBatchMismatch) {
		t.Errorf("mismatched results = %v, want ErrBatchMismatch", err)
	}
}

// TestBatchTransportFailureDropsQueue proves a failed flush loses the
// queued samples — the same loss semantics as a cut-off per-message device —
// rather than growing the queue forever.
func TestBatchTransportFailureDropsQueue(t *testing.T) {
	sc := &scriptedCloud{batchErr: transport.ErrUnavailable}
	dev := newScriptedDevice(t, sc)

	if err := dev.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Heartbeat(); !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("failed flush = %v, want ErrUnavailable", err)
	}
	if got := dev.PendingBatch(); got != 0 {
		t.Errorf("PendingBatch after failed flush = %d, want 0", got)
	}
	sc.batchErr = nil
	sc.batchResp = protocol.StatusBatchResponse{}
	if err := dev.Flush(); err != nil {
		t.Errorf("flush after drop = %v, want no-op", err)
	}
	if sc.batches != 1 {
		t.Errorf("batch envelopes = %d, want 1 (empty queue sends nothing)", sc.batches)
	}
}

// TestBatchedHeartbeatsEquivalentUnderRedelivery is the fault half of the
// batching equivalence property: a batching device whose wire suffers
// seeded fail-before and fail-after faults — every retry a full batch
// redelivery — leaves the cloud in exactly the state a fault-free
// per-message device produces. The retry layer stamps each item with an
// idempotency key, and the cloud's per-item replay log turns at-least-once
// delivery into exactly-once application.
func TestBatchedHeartbeatsEquivalentUnderRedelivery(t *testing.T) {
	const heartbeats = 40
	d := design(core.AuthDevID, core.BindACLApp)

	run := func(t *testing.T, wire transport.Cloud, opts ...device.Option) *device.Device {
		t.Helper()
		dev, err := device.New(device.Config{
			ID: devID, FactorySecret: devSecret, LocalName: "plug", Model: "plug",
		}, d, wire, opts...)
		if err != nil {
			t.Fatal(err)
		}
		provision(t, dev)
		return dev
	}

	// Reference: clean wire, one message per heartbeat.
	refSvc, refUser := newCloud(t, d)
	refDev := run(t, transport.StampSource(refSvc, "203.0.113.7"))

	// Subject: batched wire behind a fault plane that drops ~25% of frames
	// before delivery and loses ~25% of responses after delivery, with a
	// no-op sleep so the retry backoff doesn't slow the test.
	faultSvc, faultUser := newCloud(t, d)
	plane := transport.NewFaultPlane(11,
		transport.WithFailBeforeRate(0.25),
		transport.WithFailAfterRate(0.25))
	faulty := plane.Wrap(transport.StampSource(faultSvc, "203.0.113.7"), transport.PartyDevice)
	faultDev := run(t, faulty,
		device.WithBatching(4, 0),
		device.WithRetry(retry.Policy{MaxAttempts: 12, Seed: 5, Sleep: func(time.Duration) {}}))

	for _, c := range []struct {
		svc interface {
			HandleBind(protocol.BindRequest) (protocol.BindResponse, error)
		}
		user string
	}{{refSvc, refUser}, {faultSvc, faultUser}} {
		if _, err := c.svc.HandleBind(protocol.BindRequest{DeviceID: devID, UserToken: c.user, Sender: core.SenderApp}); err != nil {
			t.Fatal(err)
		}
	}

	drive := func(t *testing.T, dev *device.Device) {
		t.Helper()
		for i := 0; i < heartbeats; i++ {
			dev.QueueReading("power_w", float64(i))
			if err := dev.Heartbeat(); err != nil {
				t.Fatal(err)
			}
		}
		if err := dev.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	drive(t, refDev)
	drive(t, faultDev)

	if plane.Failures() == 0 {
		t.Fatal("fault plane injected nothing; the property was not exercised")
	}

	// The cloud-visible outcome must be identical: same shadow state, same
	// transition trace, same readings ingested exactly once each.
	refSt, err := refSvc.ShadowState(protocol.ShadowStateRequest{DeviceID: devID})
	if err != nil {
		t.Fatal(err)
	}
	faultSt, err := faultSvc.ShadowState(protocol.ShadowStateRequest{DeviceID: devID})
	if err != nil {
		t.Fatal(err)
	}
	if refSt.State != faultSt.State {
		t.Errorf("state: faulted %v != reference %v", faultSt.State, refSt.State)
	}

	refTr, faultTr := refSvc.ShadowTrace(devID), faultSvc.ShadowTrace(devID)
	if len(refTr) != len(faultTr) {
		t.Fatalf("trace length: faulted %d != reference %d (%v vs %v)", len(faultTr), len(refTr), faultTr, refTr)
	}
	for i := range refTr {
		if refTr[i] != faultTr[i] {
			t.Errorf("trace[%d]: faulted %+v != reference %+v", i, faultTr[i], refTr[i])
		}
	}

	refRd, err := refSvc.Readings(protocol.ReadingsRequest{DeviceID: devID, UserToken: refUser})
	if err != nil {
		t.Fatal(err)
	}
	faultRd, err := faultSvc.Readings(protocol.ReadingsRequest{DeviceID: devID, UserToken: faultUser})
	if err != nil {
		t.Fatal(err)
	}
	if len(refRd.Readings) != len(faultRd.Readings) {
		t.Fatalf("readings: faulted %d != reference %d (redelivery double-ingested or lost samples)",
			len(faultRd.Readings), len(refRd.Readings))
	}
	for i := range refRd.Readings {
		if refRd.Readings[i].Value != faultRd.Readings[i].Value {
			t.Errorf("reading %d: faulted %v != reference %v", i, faultRd.Readings[i].Value, refRd.Readings[i].Value)
		}
	}
}
