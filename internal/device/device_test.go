package device_test

import (
	"errors"
	"testing"
	"time"

	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/device"
	"github.com/iotbind/iotbind/internal/localnet"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/token"
	"github.com/iotbind/iotbind/internal/transport"
)

const (
	devID     = "AA:BB:CC:00:00:42"
	devSecret = "factory-secret-42"
)

func design(auth core.DeviceAuthMode, mech core.BindMechanism) core.DesignSpec {
	return core.DesignSpec{
		Name:                   "dev-test",
		DeviceAuth:             auth,
		Binding:                mech,
		UnbindForms:            []core.UnbindForm{core.UnbindDevIDUserToken, core.UnbindDevIDAlone},
		CheckBoundUserOnBind:   true,
		CheckBoundUserOnUnbind: true,
	}
}

func newCloud(t *testing.T, d core.DesignSpec) (*cloud.Service, string) {
	t.Helper()
	reg := cloud.NewRegistry()
	if err := reg.Add(cloud.DeviceRecord{ID: devID, FactorySecret: devSecret, Model: "plug"}); err != nil {
		t.Fatal(err)
	}
	svc, err := cloud.NewService(d, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterUser(protocol.RegisterUserRequest{UserID: "u", Password: "p"}); err != nil {
		t.Fatal(err)
	}
	login, err := svc.Login(protocol.LoginRequest{UserID: "u", Password: "p"})
	if err != nil {
		t.Fatal(err)
	}
	return svc, login.UserToken
}

func newDevice(t *testing.T, d core.DesignSpec, svc *cloud.Service, opts ...device.Option) *device.Device {
	t.Helper()
	dev, err := device.New(device.Config{
		ID: devID, FactorySecret: devSecret, LocalName: "plug", Model: "plug",
	}, d, transport.StampSource(svc, "203.0.113.7"), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestNewValidation(t *testing.T) {
	if _, err := device.New(device.Config{}, core.DesignSpec{}, nil); err == nil {
		t.Error("invalid design accepted")
	}
	if _, err := device.New(device.Config{LocalName: "x"}, design(core.AuthDevID, core.BindACLApp), nil); err == nil {
		t.Error("missing ID accepted")
	}
	if _, err := device.New(device.Config{ID: "x"}, design(core.AuthDevID, core.BindACLApp), nil); err == nil {
		t.Error("missing local name accepted")
	}
}

func TestProvisionTriggersActivation(t *testing.T) {
	d := design(core.AuthDevID, core.BindACLApp)
	svc, _ := newCloud(t, d)
	dev := newDevice(t, d, svc)

	if err := dev.Provision(localnet.Provisioning{WiFiSSID: "home", WiFiPassword: "pw"}); err != nil {
		t.Fatal(err)
	}
	if dev.InSetupMode() {
		t.Error("still in setup mode after provisioning")
	}
	if !dev.Active() {
		t.Error("not active after provisioning with Wi-Fi")
	}
	st, err := svc.ShadowState(protocol.ShadowStateRequest{DeviceID: devID})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != core.StateOnline {
		t.Errorf("shadow = %v, want online", st.State)
	}
}

func TestProvisionWithoutWiFiOnlyStoresCredentials(t *testing.T) {
	d := design(core.AuthDevID, core.BindACLApp)
	svc, _ := newCloud(t, d)
	dev := newDevice(t, d, svc)

	if err := dev.Provision(localnet.Provisioning{SessionToken: "s"}); err != nil {
		t.Fatal(err)
	}
	if dev.Active() {
		t.Error("session-token delivery must not activate an unconfigured device")
	}
	if !dev.InSetupMode() {
		t.Error("device left setup mode without Wi-Fi credentials")
	}
}

func TestDeviceInitiatedBindOnActivate(t *testing.T) {
	d := design(core.AuthDevID, core.BindACLDevice)
	svc, _ := newCloud(t, d)
	dev := newDevice(t, d, svc)

	if err := dev.Provision(localnet.Provisioning{
		WiFiSSID: "home", WiFiPassword: "pw",
		BindUserID: "u", BindUserPassword: "p",
	}); err != nil {
		t.Fatal(err)
	}
	st, err := svc.ShadowState(protocol.ShadowStateRequest{DeviceID: devID})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != core.StateControl || st.BoundUser != "u" {
		t.Errorf("shadow = %+v, want control/u", st)
	}
}

func TestCapabilityBindOnActivate(t *testing.T) {
	d := design(core.AuthDevID, core.BindCapability)
	svc, userToken := newCloud(t, d)
	dev := newDevice(t, d, svc)

	bt, err := svc.RequestBindToken(protocol.BindTokenRequest{UserToken: userToken, DeviceID: devID})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Provision(localnet.Provisioning{
		WiFiSSID: "home", WiFiPassword: "pw", BindToken: bt.BindToken,
	}); err != nil {
		t.Fatal(err)
	}
	st, err := svc.ShadowState(protocol.ShadowStateRequest{DeviceID: devID})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != core.StateControl || st.BoundUser != "u" {
		t.Errorf("shadow = %+v, want control/u", st)
	}
}

func TestResetSendsUnbindOnNextActivation(t *testing.T) {
	d := design(core.AuthDevID, core.BindACLApp)
	svc, userToken := newCloud(t, d)
	dev := newDevice(t, d, svc)

	if err := dev.Provision(localnet.Provisioning{WiFiSSID: "home", WiFiPassword: "pw"}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.HandleBind(protocol.BindRequest{DeviceID: devID, UserToken: userToken, Sender: core.SenderApp}); err != nil {
		t.Fatal(err)
	}

	dev.Reset()
	if !dev.InSetupMode() || dev.Active() {
		t.Error("reset did not return device to setup state")
	}
	// Re-provision: activation must emit the reset unbind first.
	if err := dev.Provision(localnet.Provisioning{WiFiSSID: "home", WiFiPassword: "pw"}); err != nil {
		t.Fatal(err)
	}
	st, err := svc.ShadowState(protocol.ShadowStateRequest{DeviceID: devID})
	if err != nil {
		t.Fatal(err)
	}
	if st.BoundUser != "" {
		t.Errorf("binding survived the reset flow: %+v", st)
	}
}

func TestResetClearsLocalState(t *testing.T) {
	d := design(core.AuthDevID, core.BindACLApp)
	svc, userToken := newCloud(t, d)
	dev := newDevice(t, d, svc)

	if err := dev.Provision(localnet.Provisioning{WiFiSSID: "home", WiFiPassword: "pw"}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.HandleBind(protocol.BindRequest{DeviceID: devID, UserToken: userToken, Sender: core.SenderApp}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.HandleControl(protocol.ControlRequest{
		DeviceID: devID, UserToken: userToken, Command: protocol.Command{ID: "1", Name: "on"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if len(dev.Executed()) != 1 {
		t.Fatal("command not executed before reset")
	}
	dev.Reset()
	if len(dev.Executed()) != 0 || len(dev.ReceivedData()) != 0 {
		t.Error("reset did not clear execution history")
	}
}

func TestHeartbeatCarriesDataProof(t *testing.T) {
	d := design(core.AuthDevID, core.BindACLApp)
	d.DataRequiresSession = true
	svc, _ := newCloud(t, d)
	dev := newDevice(t, d, svc)

	if err := dev.Provision(localnet.Provisioning{WiFiSSID: "home", WiFiPassword: "pw"}); err != nil {
		t.Fatal(err)
	}
	dev.QueueReading("power_w", 3)
	if err := dev.Heartbeat(); err != nil {
		t.Fatalf("heartbeat with session proof: %v", err)
	}
}

func TestHeartbeatSignsUnderPublicKey(t *testing.T) {
	d := design(core.AuthPublicKey, core.BindACLApp)
	svc, _ := newCloud(t, d)
	dev := newDevice(t, d, svc)

	if err := dev.Provision(localnet.Provisioning{WiFiSSID: "home", WiFiPassword: "pw"}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Heartbeat(); err != nil {
		t.Fatalf("signed heartbeat: %v", err)
	}
}

func TestHeartbeatErrorsWhenCutOff(t *testing.T) {
	d := design(core.AuthDevToken, core.BindACLApp)
	svc, _ := newCloud(t, d)
	dev := newDevice(t, d, svc)

	// Provision without a device token on a DevToken cloud: activation
	// must fail at registration.
	err := dev.Provision(localnet.Provisioning{WiFiSSID: "home", WiFiPassword: "pw"})
	if !errors.Is(err, protocol.ErrAuthFailed) {
		t.Fatalf("tokenless activation = %v, want ErrAuthFailed", err)
	}
}

func TestPressButtonRegistersWithFlag(t *testing.T) {
	d := design(core.AuthDevID, core.BindACLApp)
	d.BindButtonWindow = true
	d.OnlineBeforeBind = true
	svc, userToken := newCloud(t, d)
	dev := newDevice(t, d, svc)

	if err := dev.Provision(localnet.Provisioning{WiFiSSID: "home", WiFiPassword: "pw"}); err != nil {
		t.Fatal(err)
	}
	// Bind before the button: rejected.
	if _, err := svc.HandleBind(protocol.BindRequest{DeviceID: devID, UserToken: userToken, Sender: core.SenderApp, SourceIP: "203.0.113.7"}); !errors.Is(err, protocol.ErrOutsideWindow) {
		t.Fatalf("bind before button = %v, want ErrOutsideWindow", err)
	}
	if err := dev.PressButton(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.HandleBind(protocol.BindRequest{DeviceID: devID, UserToken: userToken, Sender: core.SenderApp, SourceIP: "203.0.113.7"}); err != nil {
		t.Fatalf("bind after button = %v", err)
	}
}

func TestWithClockStampsReadings(t *testing.T) {
	fixed := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	d := design(core.AuthDevID, core.BindACLApp)
	svc, userToken := newCloud(t, d)
	dev := newDevice(t, d, svc, device.WithClock(func() time.Time { return fixed }))

	if err := dev.Provision(localnet.Provisioning{WiFiSSID: "home", WiFiPassword: "pw"}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.HandleBind(protocol.BindRequest{DeviceID: devID, UserToken: userToken, Sender: core.SenderApp}); err != nil {
		t.Fatal(err)
	}
	dev.QueueReading("t", 1)
	if err := dev.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	r, err := svc.Readings(protocol.ReadingsRequest{DeviceID: devID, UserToken: userToken})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Readings) != 1 || !r.Readings[0].At.Equal(fixed) {
		t.Errorf("readings = %+v, want stamp %v", r.Readings, fixed)
	}
}

func TestWithFirmwareOption(t *testing.T) {
	d := design(core.AuthDevID, core.BindACLApp)
	svc, _ := newCloud(t, d)
	dev := newDevice(t, d, svc, device.WithFirmware("9.9.9"))
	if err := dev.Provision(localnet.Provisioning{WiFiSSID: "home", WiFiPassword: "pw"}); err != nil {
		t.Fatal(err)
	}
	_ = dev // the version travels in status requests; acceptance is enough here
}

// TestTokenIssuerSharing checks the WithTokenIssuer option wires a shared
// issuer.
func TestTokenIssuerSharing(t *testing.T) {
	d := design(core.AuthDevID, core.BindACLApp)
	reg := cloud.NewRegistry()
	if err := reg.Add(cloud.DeviceRecord{ID: devID, FactorySecret: devSecret}); err != nil {
		t.Fatal(err)
	}
	iss := token.NewIssuer()
	svc, err := cloud.NewService(d, reg, cloud.WithTokenIssuer(iss))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterUser(protocol.RegisterUserRequest{UserID: "u", Password: "p"}); err != nil {
		t.Fatal(err)
	}
	login, err := svc.Login(protocol.LoginRequest{UserID: "u", Password: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := iss.Verify(token.KindUser, login.UserToken); err != nil {
		t.Errorf("shared issuer does not know the issued token: %v", err)
	}
}
