// Package device emulates the firmware of an IoT device as it participates
// in remote binding: local setup mode (discovery and provisioning), cloud
// registration and heartbeats under the vendor's device-authentication
// design, device-initiated binding where the design calls for it, command
// execution, and factory reset.
//
// The agent is deliberately passive — no background goroutines. The testbed
// (or an example program) drives Activate and Heartbeat explicitly, which
// keeps every experiment deterministic.
package device

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/localnet"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/retry"
	"github.com/iotbind/iotbind/internal/transport"
)

// Errors returned by the device agent.
var (
	// ErrNotProvisioned is returned when activating a device that has no
	// Wi-Fi configuration yet.
	ErrNotProvisioned = errors.New("device: not provisioned")
	// ErrNoCloud is returned when the device has no transport attached.
	ErrNoCloud = errors.New("device: no cloud transport attached")
)

// Device is one emulated IoT device.
type Device struct {
	id            string
	factorySecret string
	localName     string
	model         string
	firmware      string
	design        core.DesignSpec

	mu          sync.Mutex
	cloud       transport.Cloud
	setupMode   bool
	provisioned bool
	resetNotify bool
	active      bool

	devToken     string
	sessionToken string
	sessionNonce string
	bindUserID   string
	bindUserPw   string
	bindToken    string

	pendingReadings []protocol.Reading
	executed        []protocol.Command
	received        []protocol.UserData

	now         func() time.Time
	retryPolicy *retry.Policy
	retrier     *retry.Transport
}

var _ localnet.Responder = (*Device)(nil)

// Option configures a Device.
type Option interface {
	apply(*Device)
}

type optionFunc func(*Device)

func (f optionFunc) apply(d *Device) { f(d) }

// WithClock injects a clock for reading timestamps.
func WithClock(now func() time.Time) Option {
	return optionFunc(func(d *Device) { d.now = now })
}

// WithFirmware sets the reported firmware version.
func WithFirmware(v string) Option {
	return optionFunc(func(d *Device) { d.firmware = v })
}

// WithRetry makes the device re-send failed cloud calls under the policy
// (see package retry): heartbeats, registrations, binds and unbinds
// recover from transient transport failures instead of surfacing them.
// Close aborts any in-flight backoff wait.
func WithRetry(p retry.Policy) Option {
	return optionFunc(func(d *Device) { d.retryPolicy = &p })
}

// Config identifies one manufactured device.
type Config struct {
	// ID is the device identifier (matches the vendor registry).
	ID string
	// FactorySecret is the provisioning key material (matches the vendor
	// registry).
	FactorySecret string
	// LocalName is the device's name on the LAN.
	LocalName string
	// Model is the reported model name.
	Model string
}

// New creates a device in factory state (setup mode). The cloud transport
// must be the one stamped with the device's home network address.
func New(cfg Config, design core.DesignSpec, cloud transport.Cloud, opts ...Option) (*Device, error) {
	if err := design.Validate(); err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}
	if cfg.ID == "" || cfg.LocalName == "" {
		return nil, fmt.Errorf("device: %w", errors.New("missing ID or local name"))
	}
	d := &Device{
		id:            cfg.ID,
		factorySecret: cfg.FactorySecret,
		localName:     cfg.LocalName,
		model:         cfg.Model,
		firmware:      "1.0.0",
		design:        design,
		cloud:         cloud,
		setupMode:     true,
		now:           time.Now,
	}
	for _, o := range opts {
		o.apply(d)
	}
	if d.retryPolicy != nil && d.cloud != nil {
		d.retrier = retry.Wrap(d.cloud, *d.retryPolicy)
		d.cloud = d.retrier
	}
	return d, nil
}

// Close releases the agent's transport-side resources: an in-flight retry
// backoff is aborted and no further retries are attempted. The device
// itself stays usable (each call still gets one delivery attempt), so a
// powered-off emulated device can simply stop being driven.
func (d *Device) Close() {
	d.mu.Lock()
	r := d.retrier
	d.mu.Unlock()
	if r != nil {
		r.Close()
	}
}

// ID returns the device identifier — the value printed on the label that
// the paper's adversary obtains through ownership transfer or enumeration.
func (d *Device) ID() string { return d.id }

// LocalName implements localnet.Responder.
func (d *Device) LocalName() string { return d.localName }

// InSetupMode reports whether the device accepts initial provisioning.
func (d *Device) InSetupMode() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.setupMode
}

// Active reports whether the device has registered with the cloud.
func (d *Device) Active() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.active
}

// Announce implements localnet.Responder: the SSDP-style self-description.
// The pairing proof is revealed only in setup mode.
func (d *Device) Announce() (localnet.Announcement, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ann := localnet.Announcement{
		LocalName: d.localName,
		DeviceID:  d.id,
		Model:     d.model,
		SetupMode: d.setupMode,
	}
	if d.setupMode {
		ann.PairingProof = protocol.PairingProof(d.factorySecret, d.id)
	}
	return ann, true
}

// Provision implements localnet.Responder: it stores delivered
// configuration, merging non-empty fields so the app can deliver the
// post-binding session token in a second exchange. Receiving Wi-Fi
// credentials ends setup mode and connects the device to the cloud, like
// real firmware does as soon as it joins the network.
func (d *Device) Provision(p localnet.Provisioning) error {
	d.mu.Lock()
	join := p.WiFiSSID != ""
	if join {
		d.provisioned = true
		d.setupMode = false
	}
	if p.DevToken != "" {
		d.devToken = p.DevToken
	}
	if p.SessionToken != "" {
		d.sessionToken = p.SessionToken
	}
	if p.BindUserID != "" {
		d.bindUserID = p.BindUserID
		d.bindUserPw = p.BindUserPassword
	}
	if p.BindToken != "" {
		d.bindToken = p.BindToken
	}
	d.mu.Unlock()

	if join {
		return d.Activate()
	}
	return nil
}

// Activate connects the device to the cloud: the reset notification (when
// pending and the design supports device-sent unbinds), the registration
// status message, and the device-initiated or capability binding step if
// the design uses one.
func (d *Device) Activate() error {
	d.mu.Lock()
	if !d.provisioned {
		d.mu.Unlock()
		return ErrNotProvisioned
	}
	if d.cloud == nil {
		d.mu.Unlock()
		return ErrNoCloud
	}
	cloud := d.cloud
	sendReset := d.resetNotify && d.design.SupportsUnbind(core.UnbindDevIDAlone)
	d.resetNotify = false
	d.mu.Unlock()

	if sendReset {
		err := cloud.HandleUnbind(protocol.UnbindRequest{
			DeviceID: d.id,
			Sender:   core.SenderDevice,
		})
		if err != nil && !errors.Is(err, protocol.ErrNotBound) {
			return fmt.Errorf("device %s: reset notify: %w", d.id, err)
		}
	}

	if err := d.register(false /* buttonPressed */); err != nil {
		return err
	}

	return d.bindFromDevice()
}

// register sends the boot-time status message.
func (d *Device) register(buttonPressed bool) error {
	d.mu.Lock()
	req := protocol.StatusRequest{
		Kind:          protocol.StatusRegister,
		DeviceID:      d.id,
		DevToken:      d.devToken,
		SessionToken:  d.sessionToken,
		ButtonPressed: buttonPressed,
		Firmware:      d.firmware,
		Model:         d.model,
	}
	if d.design.EffectiveAuth() == core.AuthPublicKey {
		req.Signature = protocol.StatusSignature(d.factorySecret, d.id, protocol.StatusRegister)
	}
	cloud := d.cloud
	d.mu.Unlock()

	resp, err := cloud.HandleStatus(req)
	if err != nil {
		return fmt.Errorf("device %s: register: %w", d.id, err)
	}

	d.mu.Lock()
	d.active = true
	if resp.SessionNonce != "" {
		d.sessionNonce = resp.SessionNonce
	}
	d.mu.Unlock()
	return nil
}

// bindFromDevice performs the design's device-side binding step, if any.
func (d *Device) bindFromDevice() error {
	d.mu.Lock()
	design := d.design
	cloud := d.cloud
	var req protocol.BindRequest
	send := false
	switch {
	case design.Binding == core.BindACLDevice && d.bindUserID != "":
		// Device-initiated ACL binding: the user's credential travels
		// through the device (Figure 4b).
		req = protocol.BindRequest{
			DeviceID:     d.id,
			UserID:       d.bindUserID,
			UserPassword: d.bindUserPw,
			Sender:       core.SenderDevice,
		}
		send = true
	case design.Binding == core.BindCapability && d.bindToken != "":
		// Capability binding: submit the locally delivered token with a
		// factory-secret proof (Figure 4c).
		req = protocol.BindRequest{
			DeviceID:  d.id,
			BindToken: d.bindToken,
			BindProof: protocol.BindProof(d.factorySecret, d.bindToken),
			Sender:    core.SenderDevice,
		}
		d.bindToken = "" // single use
		send = true
	}
	d.mu.Unlock()

	if !send {
		return nil
	}
	resp, err := cloud.HandleBind(req)
	if err != nil {
		return fmt.Errorf("device %s: bind: %w", d.id, err)
	}
	if resp.SessionToken != "" {
		d.mu.Lock()
		d.sessionToken = resp.SessionToken
		d.mu.Unlock()
	}
	return nil
}

// PressButton models the user pressing the physical button: the device
// sends a registration message with the button flag, opening the binding
// window on BindButtonWindow clouds (device #7).
func (d *Device) PressButton() error {
	d.mu.Lock()
	if !d.provisioned {
		d.mu.Unlock()
		return ErrNotProvisioned
	}
	d.mu.Unlock()
	return d.register(true)
}

// QueueReading queues a sensor sample for the next heartbeat.
func (d *Device) QueueReading(name string, value float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pendingReadings = append(d.pendingReadings, protocol.Reading{
		Name:  name,
		Value: value,
		At:    d.now(),
	})
}

// Heartbeat sends the periodic status message with any queued readings and
// ingests delivered commands and user data. A rejected heartbeat (e.g. a
// stale session token after the binding was replaced) returns the cloud's
// error and requeues nothing — the samples are lost, as they would be on a
// real cut-off device.
func (d *Device) Heartbeat() error {
	d.mu.Lock()
	if !d.active {
		d.mu.Unlock()
		return ErrNotProvisioned
	}
	req := protocol.StatusRequest{
		Kind:         protocol.StatusHeartbeat,
		DeviceID:     d.id,
		DevToken:     d.devToken,
		SessionToken: d.sessionToken,
		Firmware:     d.firmware,
		Model:        d.model,
		Readings:     d.pendingReadings,
	}
	if d.design.DataRequiresSession && d.sessionNonce != "" {
		req.DataProof = protocol.DataProof(d.factorySecret, d.sessionNonce)
	}
	if d.design.EffectiveAuth() == core.AuthPublicKey {
		req.Signature = protocol.StatusSignature(d.factorySecret, d.id, protocol.StatusHeartbeat)
	}
	d.pendingReadings = nil
	cloud := d.cloud
	d.mu.Unlock()

	resp, err := cloud.HandleStatus(req)
	if err != nil {
		return fmt.Errorf("device %s: heartbeat: %w", d.id, err)
	}

	d.mu.Lock()
	d.executed = append(d.executed, resp.Commands...)
	d.received = append(d.received, resp.UserData...)
	d.mu.Unlock()
	return nil
}

// Reset performs a factory reset: local state is wiped, setup mode
// re-enters, and — on designs with device-sent unbinds — a reset
// notification is queued for the next activation.
func (d *Device) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.setupMode = true
	d.provisioned = false
	d.active = false
	d.resetNotify = true
	d.devToken = ""
	d.sessionToken = ""
	d.sessionNonce = ""
	d.bindUserID = ""
	d.bindUserPw = ""
	d.bindToken = ""
	d.pendingReadings = nil
	d.executed = nil
	d.received = nil
}

// Executed returns the commands the device has executed.
func (d *Device) Executed() []protocol.Command {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]protocol.Command, len(d.executed))
	copy(out, d.executed)
	return out
}

// ExecutedSince returns a copy of the commands executed at index n or
// later. Incremental consumers (the hub's command router) use it to read
// only the fresh tail instead of copying the whole history every cycle.
// An n at or past the end — including after a factory reset truncated
// the history — yields nil.
func (d *Device) ExecutedSince(n int) []protocol.Command {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n >= len(d.executed) {
		return nil
	}
	out := make([]protocol.Command, len(d.executed)-n)
	copy(out, d.executed[n:])
	return out
}

// ReceivedData returns the user data delivered to the device.
func (d *Device) ReceivedData() []protocol.UserData {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]protocol.UserData, len(d.received))
	copy(out, d.received)
	return out
}
