// Package device emulates the firmware of an IoT device as it participates
// in remote binding: local setup mode (discovery and provisioning), cloud
// registration and heartbeats under the vendor's device-authentication
// design, device-initiated binding where the design calls for it, command
// execution, and factory reset.
//
// The agent is deliberately passive — no background goroutines. The testbed
// (or an example program) drives Activate and Heartbeat explicitly, which
// keeps every experiment deterministic.
package device

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/localnet"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/retry"
	"github.com/iotbind/iotbind/internal/transport"
)

// Errors returned by the device agent.
var (
	// ErrNotProvisioned is returned when activating a device that has no
	// Wi-Fi configuration yet.
	ErrNotProvisioned = errors.New("device: not provisioned")
	// ErrNoCloud is returned when the device has no transport attached.
	ErrNoCloud = errors.New("device: no cloud transport attached")
)

// Device is one emulated IoT device.
type Device struct {
	id            string
	factorySecret string
	localName     string
	model         string
	firmware      string
	design        core.DesignSpec

	mu          sync.Mutex
	cloud       transport.Cloud
	setupMode   bool
	provisioned bool
	resetNotify bool
	active      bool

	devToken     string
	sessionToken string
	sessionNonce string
	bindUserID   string
	bindUserPw   string
	bindToken    string

	pendingReadings []protocol.Reading
	executed        []protocol.Command
	received        []protocol.UserData

	batchSize     int
	flushInterval time.Duration
	batchQueue    []protocol.StatusRequest
	batchStart    time.Time

	now         func() time.Time
	retryPolicy *retry.Policy
	retrier     *retry.Transport
}

var _ localnet.Responder = (*Device)(nil)

// Option configures a Device.
type Option interface {
	apply(*Device)
}

type optionFunc func(*Device)

func (f optionFunc) apply(d *Device) { f(d) }

// WithClock injects a clock for reading timestamps.
func WithClock(now func() time.Time) Option {
	return optionFunc(func(d *Device) { d.now = now })
}

// WithFirmware sets the reported firmware version.
func WithFirmware(v string) Option {
	return optionFunc(func(d *Device) { d.firmware = v })
}

// WithBatching makes the device coalesce heartbeats instead of sending
// each one immediately: Heartbeat queues the status message and the queue
// is delivered as one StatusBatch once it holds n messages or the oldest
// queued message is flushInterval old (per the injected clock; zero
// disables the age trigger). The device stays passive — with no goroutines
// the flush happens inside the Heartbeat call that trips either condition,
// or on an explicit Flush. n <= 1 leaves batching off.
//
// Keep flushInterval comfortably under the cloud's heartbeat TTL:
// coalescing delays delivery, and a queue older than the TTL would let
// the shadow flap offline between flushes.
func WithBatching(n int, flushInterval time.Duration) Option {
	return optionFunc(func(d *Device) {
		d.batchSize = n
		d.flushInterval = flushInterval
	})
}

// WithRetry makes the device re-send failed cloud calls under the policy
// (see package retry): heartbeats, registrations, binds and unbinds
// recover from transient transport failures instead of surfacing them.
// Close aborts any in-flight backoff wait.
func WithRetry(p retry.Policy) Option {
	return optionFunc(func(d *Device) { d.retryPolicy = &p })
}

// Config identifies one manufactured device.
type Config struct {
	// ID is the device identifier (matches the vendor registry).
	ID string
	// FactorySecret is the provisioning key material (matches the vendor
	// registry).
	FactorySecret string
	// LocalName is the device's name on the LAN.
	LocalName string
	// Model is the reported model name.
	Model string
}

// New creates a device in factory state (setup mode). The cloud transport
// must be the one stamped with the device's home network address.
func New(cfg Config, design core.DesignSpec, cloud transport.Cloud, opts ...Option) (*Device, error) {
	if err := design.Validate(); err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}
	if cfg.ID == "" || cfg.LocalName == "" {
		return nil, fmt.Errorf("device: %w", errors.New("missing ID or local name"))
	}
	d := &Device{
		id:            cfg.ID,
		factorySecret: cfg.FactorySecret,
		localName:     cfg.LocalName,
		model:         cfg.Model,
		firmware:      "1.0.0",
		design:        design,
		cloud:         cloud,
		setupMode:     true,
		now:           time.Now,
	}
	for _, o := range opts {
		o.apply(d)
	}
	if d.retryPolicy != nil && d.cloud != nil {
		d.retrier = retry.Wrap(d.cloud, *d.retryPolicy)
		d.cloud = d.retrier
	}
	return d, nil
}

// Close releases the agent's transport-side resources: an in-flight retry
// backoff is aborted and no further retries are attempted. The device
// itself stays usable (each call still gets one delivery attempt), so a
// powered-off emulated device can simply stop being driven.
func (d *Device) Close() {
	d.mu.Lock()
	r := d.retrier
	d.mu.Unlock()
	if r != nil {
		r.Close()
	}
}

// ID returns the device identifier — the value printed on the label that
// the paper's adversary obtains through ownership transfer or enumeration.
func (d *Device) ID() string { return d.id }

// LocalName implements localnet.Responder.
func (d *Device) LocalName() string { return d.localName }

// InSetupMode reports whether the device accepts initial provisioning.
func (d *Device) InSetupMode() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.setupMode
}

// Active reports whether the device has registered with the cloud.
func (d *Device) Active() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.active
}

// Announce implements localnet.Responder: the SSDP-style self-description.
// The pairing proof is revealed only in setup mode.
func (d *Device) Announce() (localnet.Announcement, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ann := localnet.Announcement{
		LocalName: d.localName,
		DeviceID:  d.id,
		Model:     d.model,
		SetupMode: d.setupMode,
	}
	if d.setupMode {
		ann.PairingProof = protocol.PairingProof(d.factorySecret, d.id)
	}
	return ann, true
}

// Provision implements localnet.Responder: it stores delivered
// configuration, merging non-empty fields so the app can deliver the
// post-binding session token in a second exchange. Receiving Wi-Fi
// credentials ends setup mode and connects the device to the cloud, like
// real firmware does as soon as it joins the network.
func (d *Device) Provision(p localnet.Provisioning) error {
	d.mu.Lock()
	join := p.WiFiSSID != ""
	if join {
		d.provisioned = true
		d.setupMode = false
	}
	if p.DevToken != "" {
		d.devToken = p.DevToken
	}
	if p.SessionToken != "" {
		d.sessionToken = p.SessionToken
	}
	if p.BindUserID != "" {
		d.bindUserID = p.BindUserID
		d.bindUserPw = p.BindUserPassword
	}
	if p.BindToken != "" {
		d.bindToken = p.BindToken
	}
	d.mu.Unlock()

	if join {
		return d.Activate()
	}
	return nil
}

// Activate connects the device to the cloud: the reset notification (when
// pending and the design supports device-sent unbinds), the registration
// status message, and the device-initiated or capability binding step if
// the design uses one.
func (d *Device) Activate() error {
	d.mu.Lock()
	if !d.provisioned {
		d.mu.Unlock()
		return ErrNotProvisioned
	}
	if d.cloud == nil {
		d.mu.Unlock()
		return ErrNoCloud
	}
	cloud := d.cloud
	sendReset := d.resetNotify && d.design.SupportsUnbind(core.UnbindDevIDAlone)
	d.resetNotify = false
	d.mu.Unlock()

	if sendReset {
		err := cloud.HandleUnbind(protocol.UnbindRequest{
			DeviceID: d.id,
			Sender:   core.SenderDevice,
		})
		if err != nil && !errors.Is(err, protocol.ErrNotBound) {
			return fmt.Errorf("device %s: reset notify: %w", d.id, err)
		}
	}

	if err := d.register(false /* buttonPressed */); err != nil {
		return err
	}

	return d.bindFromDevice()
}

// register sends the boot-time status message.
func (d *Device) register(buttonPressed bool) error {
	d.mu.Lock()
	// Queued heartbeats logically precede this registration: deliver them
	// first so the cloud observes messages in the order the device produced
	// them.
	if len(d.batchQueue) > 0 {
		if err := d.flushLocked(); err != nil {
			return err
		}
		d.mu.Lock()
	}
	req := protocol.StatusRequest{
		Kind:          protocol.StatusRegister,
		DeviceID:      d.id,
		DevToken:      d.devToken,
		SessionToken:  d.sessionToken,
		ButtonPressed: buttonPressed,
		Firmware:      d.firmware,
		Model:         d.model,
	}
	if d.design.EffectiveAuth() == core.AuthPublicKey {
		req.Signature = protocol.StatusSignature(d.factorySecret, d.id, protocol.StatusRegister)
	}
	cloud := d.cloud
	d.mu.Unlock()

	resp, err := cloud.HandleStatus(req)
	if err != nil {
		return fmt.Errorf("device %s: register: %w", d.id, err)
	}

	d.mu.Lock()
	d.active = true
	if resp.SessionNonce != "" {
		d.sessionNonce = resp.SessionNonce
	}
	d.mu.Unlock()
	return nil
}

// bindFromDevice performs the design's device-side binding step, if any.
func (d *Device) bindFromDevice() error {
	d.mu.Lock()
	design := d.design
	cloud := d.cloud
	var req protocol.BindRequest
	send := false
	switch {
	case design.Binding == core.BindACLDevice && d.bindUserID != "":
		// Device-initiated ACL binding: the user's credential travels
		// through the device (Figure 4b).
		req = protocol.BindRequest{
			DeviceID:     d.id,
			UserID:       d.bindUserID,
			UserPassword: d.bindUserPw,
			Sender:       core.SenderDevice,
		}
		send = true
	case design.Binding == core.BindCapability && d.bindToken != "":
		// Capability binding: submit the locally delivered token with a
		// factory-secret proof (Figure 4c).
		req = protocol.BindRequest{
			DeviceID:  d.id,
			BindToken: d.bindToken,
			BindProof: protocol.BindProof(d.factorySecret, d.bindToken),
			Sender:    core.SenderDevice,
		}
		d.bindToken = "" // single use
		send = true
	}
	d.mu.Unlock()

	if !send {
		return nil
	}
	resp, err := cloud.HandleBind(req)
	if err != nil {
		return fmt.Errorf("device %s: bind: %w", d.id, err)
	}
	if resp.SessionToken != "" {
		d.mu.Lock()
		d.sessionToken = resp.SessionToken
		d.mu.Unlock()
	}
	return nil
}

// PressButton models the user pressing the physical button: the device
// sends a registration message with the button flag, opening the binding
// window on BindButtonWindow clouds (device #7).
func (d *Device) PressButton() error {
	d.mu.Lock()
	if !d.provisioned {
		d.mu.Unlock()
		return ErrNotProvisioned
	}
	d.mu.Unlock()
	return d.register(true)
}

// QueueReading queues a sensor sample for the next heartbeat.
func (d *Device) QueueReading(name string, value float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pendingReadings = append(d.pendingReadings, protocol.Reading{
		Name:  name,
		Value: value,
		At:    d.now(),
	})
}

// Heartbeat sends the periodic status message with any queued readings and
// ingests delivered commands and user data. A rejected heartbeat (e.g. a
// stale session token after the binding was replaced) returns the cloud's
// error and requeues nothing — the samples are lost, as they would be on a
// real cut-off device.
//
// Under WithBatching the message is queued instead; the call that fills
// the batch (or finds the queue flushInterval old) delivers the whole
// queue as one StatusBatch and returns its outcome.
func (d *Device) Heartbeat() error {
	d.mu.Lock()
	if !d.active {
		d.mu.Unlock()
		return ErrNotProvisioned
	}
	req := d.heartbeatRequestLocked()
	if d.batchSize <= 1 {
		cloud := d.cloud
		d.mu.Unlock()

		resp, err := cloud.HandleStatus(req)
		if err != nil {
			return fmt.Errorf("device %s: heartbeat: %w", d.id, err)
		}

		d.mu.Lock()
		d.executed = append(d.executed, resp.Commands...)
		d.received = append(d.received, resp.UserData...)
		d.mu.Unlock()
		return nil
	}

	if len(d.batchQueue) == 0 {
		d.batchStart = d.now()
	}
	d.batchQueue = append(d.batchQueue, req)
	due := len(d.batchQueue) >= d.batchSize ||
		(d.flushInterval > 0 && !d.now().Before(d.batchStart.Add(d.flushInterval)))
	if !due {
		d.mu.Unlock()
		return nil
	}
	return d.flushLocked()
}

// heartbeatRequestLocked builds the periodic status message and claims the
// queued readings. The caller holds d.mu.
func (d *Device) heartbeatRequestLocked() protocol.StatusRequest {
	req := protocol.StatusRequest{
		Kind:         protocol.StatusHeartbeat,
		DeviceID:     d.id,
		DevToken:     d.devToken,
		SessionToken: d.sessionToken,
		Firmware:     d.firmware,
		Model:        d.model,
		Readings:     d.pendingReadings,
	}
	if d.design.DataRequiresSession && d.sessionNonce != "" {
		req.DataProof = protocol.DataProof(d.factorySecret, d.sessionNonce)
	}
	if d.design.EffectiveAuth() == core.AuthPublicKey {
		req.Signature = protocol.StatusSignature(d.factorySecret, d.id, protocol.StatusHeartbeat)
	}
	d.pendingReadings = nil
	return req
}

// Flush delivers any queued heartbeats immediately. It is a no-op when
// nothing is queued or batching is off.
func (d *Device) Flush() error {
	d.mu.Lock()
	return d.flushLocked()
}

// PendingBatch reports how many heartbeats are queued awaiting a flush.
func (d *Device) PendingBatch() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.batchQueue)
}

// flushLocked takes the queued messages, delivers them as one StatusBatch,
// and merges the per-item results. The caller holds d.mu; it is released
// on return. A transport-level failure loses the whole queue — exactly the
// samples a real cut-off device would lose — while per-item rejections
// still ingest every accepted item's commands and data, returning the
// first rejection.
func (d *Device) flushLocked() error {
	items := d.batchQueue
	d.batchQueue = nil
	cloud := d.cloud
	d.mu.Unlock()
	if len(items) == 0 {
		return nil
	}

	resp, err := cloud.HandleStatusBatch(protocol.StatusBatchRequest{Items: items})
	if err != nil {
		return fmt.Errorf("device %s: heartbeat batch: %w", d.id, err)
	}
	if len(resp.Results) != len(items) {
		return fmt.Errorf("device %s: heartbeat batch: %w", d.id, protocol.ErrBatchMismatch)
	}

	var firstErr error
	d.mu.Lock()
	for i := range resp.Results {
		r := &resp.Results[i]
		if itemErr := r.Err(); itemErr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("device %s: heartbeat batch item %d: %w", d.id, i, itemErr)
			}
			continue
		}
		d.executed = append(d.executed, r.Response.Commands...)
		d.received = append(d.received, r.Response.UserData...)
	}
	d.mu.Unlock()
	return firstErr
}

// Reset performs a factory reset: local state is wiped, setup mode
// re-enters, and — on designs with device-sent unbinds — a reset
// notification is queued for the next activation.
func (d *Device) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.setupMode = true
	d.provisioned = false
	d.active = false
	d.resetNotify = true
	d.devToken = ""
	d.sessionToken = ""
	d.sessionNonce = ""
	d.bindUserID = ""
	d.bindUserPw = ""
	d.bindToken = ""
	d.pendingReadings = nil
	d.batchQueue = nil
	d.executed = nil
	d.received = nil
}

// Executed returns the commands the device has executed.
func (d *Device) Executed() []protocol.Command {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]protocol.Command, len(d.executed))
	copy(out, d.executed)
	return out
}

// ExecutedSince returns a copy of the commands executed at index n or
// later. Incremental consumers (the hub's command router) use it to read
// only the fresh tail instead of copying the whole history every cycle.
// An n at or past the end — including after a factory reset truncated
// the history — yields nil.
func (d *Device) ExecutedSince(n int) []protocol.Command {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n >= len(d.executed) {
		return nil
	}
	out := make([]protocol.Command, len(d.executed)-n)
	copy(out, d.executed[n:])
	return out
}

// ReceivedData returns the user data delivered to the device.
func (d *Device) ReceivedData() []protocol.UserData {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]protocol.UserData, len(d.received))
	copy(out, d.received)
	return out
}
