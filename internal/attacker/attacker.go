// Package attacker implements the paper's remote adversary (Section III-A):
// a party with ordinary cloud access, their own account, and knowledge of a
// victim's device ID — obtained from labels, ownership transfer, traffic,
// or enumeration — but no access to the victim's local network, the
// device's firmware secrets, or the victim's credentials.
//
// The toolkit provides the message-forgery mechanics behind the attacks of
// Table II. Classifying an attempt as the paper does (success, failure,
// unconfirmed) additionally requires observing the victim side; the testbed
// package does that.
package attacker

import (
	"errors"
	"fmt"
	"sync"

	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/devid"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
)

// ErrForgeryUnavailable is returned when an attack needs device-protocol
// messages the attacker could not reconstruct (the paper's firmware-opaque
// products, reported as "O" in Table III).
var ErrForgeryUnavailable = errors.New("attacker: device-message forgery unavailable (firmware resisted analysis)")

// Attacker is a remote adversary against one vendor's cloud.
type Attacker struct {
	userID   string
	password string
	design   core.DesignSpec
	cloud    transport.Cloud

	// canForgeDeviceMessages reports whether firmware analysis yielded
	// the device-side message formats (Section VI-A: possible for 3 of
	// the 10 products).
	canForgeDeviceMessages bool

	mu        sync.Mutex
	userToken string
	sessions  map[string]string // deviceID -> session token from forged binds
	stolen    []protocol.UserData
}

// Option configures an Attacker.
type Option interface {
	apply(*Attacker)
}

type optionFunc func(*Attacker)

func (f optionFunc) apply(a *Attacker) { f(a) }

// WithDeviceMessageForgery declares whether the attacker reverse-engineered
// the device protocol. It defaults to the design's FirmwareOpaque flag
// being false.
func WithDeviceMessageForgery(can bool) Option {
	return optionFunc(func(a *Attacker) { a.canForgeDeviceMessages = can })
}

// New creates an attacker with their own account credentials. The cloud
// transport must be stamped with the attacker's own network address — the
// adversary cannot spoof the victim's source IP.
func New(userID, password string, design core.DesignSpec, cloud transport.Cloud, opts ...Option) (*Attacker, error) {
	if err := design.Validate(); err != nil {
		return nil, fmt.Errorf("attacker: %w", err)
	}
	a := &Attacker{
		userID:                 userID,
		password:               password,
		design:                 design,
		cloud:                  cloud,
		canForgeDeviceMessages: !design.FirmwareOpaque,
		sessions:               make(map[string]string),
	}
	for _, o := range opts {
		o.apply(a)
	}
	return a, nil
}

// UserID returns the attacker's account name.
func (a *Attacker) UserID() string { return a.userID }

// CanForgeDeviceMessages reports whether device-side forgery is available.
func (a *Attacker) CanForgeDeviceMessages() bool { return a.canForgeDeviceMessages }

// Prepare registers (if needed) and logs in the attacker's own account —
// ordinary use of the public cloud API.
func (a *Attacker) Prepare() error {
	err := a.cloud.RegisterUser(protocol.RegisterUserRequest{UserID: a.userID, Password: a.password})
	if err != nil && !errors.Is(err, protocol.ErrUserExists) {
		return fmt.Errorf("attacker: register: %w", err)
	}
	resp, err := a.cloud.Login(protocol.LoginRequest{UserID: a.userID, Password: a.password})
	if err != nil {
		return fmt.Errorf("attacker: login: %w", err)
	}
	a.mu.Lock()
	a.userToken = resp.UserToken
	a.mu.Unlock()
	return nil
}

// ForgeStatus sends a forged device status message carrying only the
// victim's device ID — no device token, signature, or session proof, since
// the adversary has none of those. Any returned user data is recorded as
// stolen (the A1 data-stealing evidence).
func (a *Attacker) ForgeStatus(deviceID string, kind protocol.StatusKind, readings []protocol.Reading) (protocol.StatusResponse, error) {
	if !a.canForgeDeviceMessages {
		return protocol.StatusResponse{}, ErrForgeryUnavailable
	}
	resp, err := a.cloud.HandleStatus(protocol.StatusRequest{
		Kind:     kind,
		DeviceID: deviceID,
		Firmware: "forged",
		Readings: readings,
	})
	if err != nil {
		return protocol.StatusResponse{}, fmt.Errorf("attacker: forge status: %w", err)
	}
	if len(resp.UserData) > 0 {
		a.mu.Lock()
		a.stolen = append(a.stolen, resp.UserData...)
		a.mu.Unlock()
	}
	return resp, nil
}

// ForgeBind sends a forged binding message that pairs the victim's device
// ID with the attacker's own identity, shaped for the vendor's binding
// mechanism (Figure 4).
func (a *Attacker) ForgeBind(deviceID string) (protocol.BindResponse, error) {
	req := protocol.BindRequest{DeviceID: deviceID}
	switch a.design.Binding {
	case core.BindACLApp:
		tok, err := a.token()
		if err != nil {
			return protocol.BindResponse{}, err
		}
		req.UserToken = tok
		req.Sender = core.SenderApp
	case core.BindACLDevice:
		// The bind message is a device message; forging it needs the
		// reverse-engineered device protocol.
		if !a.canForgeDeviceMessages {
			return protocol.BindResponse{}, ErrForgeryUnavailable
		}
		req.UserID = a.userID
		req.UserPassword = a.password
		req.Sender = core.SenderDevice
	case core.BindCapability:
		// Best effort: obtain a bind token for the attacker's own
		// account and submit it without the factory proof the real
		// device would attach.
		tok, err := a.token()
		if err != nil {
			return protocol.BindResponse{}, err
		}
		resp, err := a.cloud.RequestBindToken(protocol.BindTokenRequest{UserToken: tok, DeviceID: deviceID})
		if err != nil {
			return protocol.BindResponse{}, fmt.Errorf("attacker: bind token: %w", err)
		}
		req.BindToken = resp.BindToken
		req.BindProof = "forged-proof"
		req.Sender = core.SenderDevice
	default:
		return protocol.BindResponse{}, fmt.Errorf("attacker: unknown binding mechanism %v", a.design.Binding)
	}

	resp, err := a.cloud.HandleBind(req)
	if err != nil {
		return protocol.BindResponse{}, fmt.Errorf("attacker: forge bind: %w", err)
	}
	if resp.SessionToken != "" {
		a.mu.Lock()
		a.sessions[deviceID] = resp.SessionToken
		a.mu.Unlock()
	}
	return resp, nil
}

// ForgeUnbind sends a forged unbinding message of the given form: Type 1
// pairs the victim's device ID with the attacker's own user token; Type 2
// sends the bare device ID (a device message).
func (a *Attacker) ForgeUnbind(deviceID string, form core.UnbindForm) error {
	switch form {
	case core.UnbindDevIDUserToken:
		tok, err := a.token()
		if err != nil {
			return err
		}
		if err := a.cloud.HandleUnbind(protocol.UnbindRequest{
			DeviceID:  deviceID,
			UserToken: tok,
			Sender:    core.SenderApp,
		}); err != nil {
			return fmt.Errorf("attacker: forge unbind type1: %w", err)
		}
		return nil
	case core.UnbindDevIDAlone:
		if !a.canForgeDeviceMessages {
			return ErrForgeryUnavailable
		}
		if err := a.cloud.HandleUnbind(protocol.UnbindRequest{
			DeviceID: deviceID,
			Sender:   core.SenderDevice,
		}); err != nil {
			return fmt.Errorf("attacker: forge unbind type2: %w", err)
		}
		return nil
	default:
		return fmt.Errorf("attacker: unbind form %v not forgeable", form)
	}
}

// Control attempts to command the victim's device using the attacker's own
// user token (plus any session token captured from a forged bind).
func (a *Attacker) Control(deviceID string, cmd protocol.Command) error {
	tok, err := a.token()
	if err != nil {
		return err
	}
	a.mu.Lock()
	session := a.sessions[deviceID]
	a.mu.Unlock()
	resp, err := a.cloud.HandleControl(protocol.ControlRequest{
		DeviceID:     deviceID,
		UserToken:    tok,
		SessionToken: session,
		Command:      cmd,
	})
	if err != nil {
		return fmt.Errorf("attacker: control: %w", err)
	}
	if !resp.Queued {
		return errors.New("attacker: control not queued")
	}
	return nil
}

// StolenData returns the user data captured through forged device
// messages.
func (a *Attacker) StolenData() []protocol.UserData {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]protocol.UserData, len(a.stolen))
	copy(out, a.stolen)
	return out
}

// ProbeDeviceID checks whether a candidate ID exists in the vendor's
// registry, distinguishing "unknown device" responses from policy errors —
// the reconnaissance primitive behind ID enumeration.
func (a *Attacker) ProbeDeviceID(deviceID string) (bool, error) {
	_, err := a.cloud.ShadowState(protocol.ShadowStateRequest{DeviceID: deviceID})
	if err == nil {
		return true, nil
	}
	if errors.Is(err, protocol.ErrUnknownDevice) {
		return false, nil
	}
	return false, fmt.Errorf("attacker: probe: %w", err)
}

// SweepResult summarizes an enumeration campaign (the scalable
// denial-of-service of Section V-C).
type SweepResult struct {
	// Tried is the number of candidate IDs attempted.
	Tried uint64
	// Existing are candidates that named real devices.
	Existing []string
	// Occupied are devices whose binding the attacker captured.
	Occupied []string
}

// SweepBindDoS enumerates candidate device IDs from a generator and forges
// a binding for every one that exists, occupying the bindings of an entire
// product range at once.
func (a *Attacker) SweepBindDoS(gen devid.Generator, start, count uint64) (SweepResult, error) {
	var (
		result   SweepResult
		probeErr error
	)
	tried, err := devid.Enumerate(gen, start, count, func(id string) bool {
		exists, err := a.ProbeDeviceID(id)
		if err != nil {
			probeErr = err
			return false
		}
		if !exists {
			return true
		}
		result.Existing = append(result.Existing, id)
		if _, err := a.ForgeBind(id); err == nil {
			result.Occupied = append(result.Occupied, id)
		}
		return true
	})
	result.Tried = tried
	if probeErr != nil {
		return result, probeErr
	}
	return result, err
}

func (a *Attacker) token() (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.userToken == "" {
		return "", errors.New("attacker: not prepared (no user token)")
	}
	return a.userToken, nil
}
