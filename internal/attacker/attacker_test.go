package attacker_test

import (
	"errors"
	"testing"

	"github.com/iotbind/iotbind/internal/attacker"
	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/devid"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
)

const (
	victimDev = "AA:BB:CC:00:00:66"
	devSecret = "factory-secret-66"
	lairIP    = "198.51.100.66"
)

func laxDesign() core.DesignSpec {
	return core.DesignSpec{
		Name:        "lax",
		DeviceAuth:  core.AuthDevID,
		Binding:     core.BindACLApp,
		UnbindForms: []core.UnbindForm{core.UnbindDevIDUserToken, core.UnbindDevIDAlone},
	}
}

func newRig(t *testing.T, d core.DesignSpec) (*cloud.Service, *attacker.Attacker, string) {
	t.Helper()
	reg := cloud.NewRegistry()
	if err := reg.Add(cloud.DeviceRecord{ID: victimDev, FactorySecret: devSecret, Model: "plug"}); err != nil {
		t.Fatal(err)
	}
	svc, err := cloud.NewService(d, reg)
	if err != nil {
		t.Fatal(err)
	}
	// The victim binds.
	if err := svc.RegisterUser(protocol.RegisterUserRequest{UserID: "victim", Password: "p"}); err != nil {
		t.Fatal(err)
	}
	login, err := svc.Login(protocol.LoginRequest{UserID: "victim", Password: "p"})
	if err != nil {
		t.Fatal(err)
	}
	atk, err := attacker.New("attacker", "pw", d, transport.StampSource(svc, lairIP))
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.Prepare(); err != nil {
		t.Fatal(err)
	}
	return svc, atk, login.UserToken
}

func bindVictim(t *testing.T, svc *cloud.Service, userToken string) {
	t.Helper()
	if _, err := svc.HandleStatus(protocol.StatusRequest{Kind: protocol.StatusRegister, DeviceID: victimDev}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.HandleBind(protocol.BindRequest{DeviceID: victimDev, UserToken: userToken, Sender: core.SenderApp}); err != nil {
		t.Fatal(err)
	}
}

func TestPrepareIsIdempotent(t *testing.T) {
	_, atk, _ := newRig(t, laxDesign())
	if err := atk.Prepare(); err != nil {
		t.Fatalf("second Prepare: %v", err)
	}
	if atk.UserID() != "attacker" {
		t.Errorf("UserID = %q", atk.UserID())
	}
}

func TestForgeStatusStealsPendingData(t *testing.T) {
	svc, atk, victim := newRig(t, laxDesign())
	bindVictim(t, svc, victim)
	if err := svc.PushUserData(protocol.PushUserDataRequest{
		DeviceID: victimDev, UserToken: victim,
		Data: protocol.UserData{Kind: "schedule", Body: "secret"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := atk.ForgeStatus(victimDev, protocol.StatusHeartbeat, nil); err != nil {
		t.Fatal(err)
	}
	stolen := atk.StolenData()
	if len(stolen) != 1 || stolen[0].Body != "secret" {
		t.Errorf("stolen = %+v", stolen)
	}
}

func TestForgeStatusUnavailableWithOpaqueFirmware(t *testing.T) {
	d := laxDesign()
	d.FirmwareOpaque = true
	_, atk, _ := newRig(t, d)
	if _, err := atk.ForgeStatus(victimDev, protocol.StatusHeartbeat, nil); !errors.Is(err, attacker.ErrForgeryUnavailable) {
		t.Errorf("opaque forge = %v, want ErrForgeryUnavailable", err)
	}
	if atk.CanForgeDeviceMessages() {
		t.Error("CanForgeDeviceMessages = true for opaque firmware")
	}
}

func TestForgeryOverride(t *testing.T) {
	d := laxDesign()
	d.FirmwareOpaque = true
	reg := cloud.NewRegistry()
	if err := reg.Add(cloud.DeviceRecord{ID: victimDev, FactorySecret: devSecret}); err != nil {
		t.Fatal(err)
	}
	svc, err := cloud.NewService(d, reg)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := attacker.New("a", "p", d, transport.StampSource(svc, lairIP),
		attacker.WithDeviceMessageForgery(true))
	if err != nil {
		t.Fatal(err)
	}
	if !atk.CanForgeDeviceMessages() {
		t.Error("override ignored")
	}
}

func TestForgeBindPerMechanism(t *testing.T) {
	t.Run("acl-app uses attacker token", func(t *testing.T) {
		svc, atk, _ := newRig(t, laxDesign())
		resp, err := atk.ForgeBind(victimDev)
		if err != nil {
			t.Fatal(err)
		}
		if resp.BoundUser != "attacker" {
			t.Errorf("bound user = %q", resp.BoundUser)
		}
		st, err := svc.ShadowState(protocol.ShadowStateRequest{DeviceID: victimDev})
		if err != nil {
			t.Fatal(err)
		}
		if st.BoundUser != "attacker" {
			t.Errorf("shadow bound to %q", st.BoundUser)
		}
	})
	t.Run("acl-device uses attacker credentials", func(t *testing.T) {
		d := laxDesign()
		d.Binding = core.BindACLDevice
		_, atk, _ := newRig(t, d)
		resp, err := atk.ForgeBind(victimDev)
		if err != nil {
			t.Fatal(err)
		}
		if resp.BoundUser != "attacker" {
			t.Errorf("bound user = %q", resp.BoundUser)
		}
	})
	t.Run("acl-device needs protocol knowledge", func(t *testing.T) {
		d := laxDesign()
		d.Binding = core.BindACLDevice
		d.FirmwareOpaque = true
		_, atk, _ := newRig(t, d)
		if _, err := atk.ForgeBind(victimDev); !errors.Is(err, attacker.ErrForgeryUnavailable) {
			t.Errorf("opaque device bind = %v, want ErrForgeryUnavailable", err)
		}
	})
	t.Run("capability fails without factory proof", func(t *testing.T) {
		d := laxDesign()
		d.Binding = core.BindCapability
		_, atk, _ := newRig(t, d)
		if _, err := atk.ForgeBind(victimDev); !errors.Is(err, protocol.ErrAuthFailed) {
			t.Errorf("capability forge = %v, want ErrAuthFailed", err)
		}
	})
}

func TestForgeUnbindForms(t *testing.T) {
	svc, atk, victim := newRig(t, laxDesign())
	bindVictim(t, svc, victim)

	if err := atk.ForgeUnbind(victimDev, core.UnbindDevIDAlone); err != nil {
		t.Fatalf("type2 forge: %v", err)
	}
	st, err := svc.ShadowState(protocol.ShadowStateRequest{DeviceID: victimDev})
	if err != nil {
		t.Fatal(err)
	}
	if st.BoundUser != "" {
		t.Error("type2 unbind did not disconnect")
	}

	// Rebind; try type1 (no owner check on this lax design).
	bindVictim(t, svc, victim)
	if err := atk.ForgeUnbind(victimDev, core.UnbindDevIDUserToken); err != nil {
		t.Fatalf("type1 forge: %v", err)
	}

	if err := atk.ForgeUnbind(victimDev, core.UnbindReplaceByBind); err == nil {
		t.Error("unforgeable form accepted")
	}
}

func TestControlWithoutBindingFails(t *testing.T) {
	svc, atk, victim := newRig(t, laxDesign())
	bindVictim(t, svc, victim)
	if err := atk.Control(victimDev, protocol.Command{ID: "x", Name: "on"}); err == nil {
		t.Error("control without binding succeeded")
	}
}

func TestControlAfterHijack(t *testing.T) {
	svc, atk, victim := newRig(t, laxDesign())
	bindVictim(t, svc, victim)
	if err := atk.ForgeUnbind(victimDev, core.UnbindDevIDAlone); err != nil {
		t.Fatal(err)
	}
	if _, err := atk.ForgeBind(victimDev); err != nil {
		t.Fatal(err)
	}
	if err := atk.Control(victimDev, protocol.Command{ID: "x", Name: "unlock"}); err != nil {
		t.Fatalf("post-hijack control: %v", err)
	}
	// The command sits in the device inbox for the real device.
	resp, err := svc.HandleStatus(protocol.StatusRequest{Kind: protocol.StatusHeartbeat, DeviceID: victimDev})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Commands) != 1 || resp.Commands[0].Name != "unlock" {
		t.Errorf("relayed commands = %+v", resp.Commands)
	}
}

func TestProbeDeviceID(t *testing.T) {
	_, atk, _ := newRig(t, laxDesign())
	exists, err := atk.ProbeDeviceID(victimDev)
	if err != nil || !exists {
		t.Errorf("probe real device = %v, %v", exists, err)
	}
	exists, err = atk.ProbeDeviceID("no-such-id")
	if err != nil || exists {
		t.Errorf("probe fake device = %v, %v", exists, err)
	}
}

func TestSweepBindDoS(t *testing.T) {
	d := laxDesign()
	gen, err := devid.NewShortDigitsGenerator(4)
	if err != nil {
		t.Fatal(err)
	}
	reg := cloud.NewRegistry()
	want := []string{"0005", "0017", "0100"}
	for _, id := range want {
		if err := reg.Add(cloud.DeviceRecord{ID: id, FactorySecret: "s" + id}); err != nil {
			t.Fatal(err)
		}
	}
	svc, err := cloud.NewService(d, reg)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := attacker.New("a", "p", d, transport.StampSource(svc, lairIP))
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.Prepare(); err != nil {
		t.Fatal(err)
	}

	result, err := atk.SweepBindDoS(gen, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if result.Tried != 200 {
		t.Errorf("tried = %d, want 200", result.Tried)
	}
	if len(result.Existing) != 3 || len(result.Occupied) != 3 {
		t.Errorf("existing=%v occupied=%v, want all three", result.Existing, result.Occupied)
	}
	for _, id := range want {
		st, err := svc.ShadowState(protocol.ShadowStateRequest{DeviceID: id})
		if err != nil {
			t.Fatal(err)
		}
		if st.BoundUser != "a" {
			t.Errorf("device %s bound to %q, want attacker", id, st.BoundUser)
		}
	}
}

func TestUnpreparedAttackerFailsGracefully(t *testing.T) {
	d := laxDesign()
	reg := cloud.NewRegistry()
	if err := reg.Add(cloud.DeviceRecord{ID: victimDev, FactorySecret: devSecret}); err != nil {
		t.Fatal(err)
	}
	svc, err := cloud.NewService(d, reg)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := attacker.New("a", "p", d, transport.StampSource(svc, lairIP))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atk.ForgeBind(victimDev); err == nil {
		t.Error("forge bind without Prepare succeeded")
	}
	if err := atk.ForgeUnbind(victimDev, core.UnbindDevIDUserToken); err == nil {
		t.Error("forge unbind without Prepare succeeded")
	}
	if err := atk.Control(victimDev, protocol.Command{}); err == nil {
		t.Error("control without Prepare succeeded")
	}
}

func TestNewValidatesDesign(t *testing.T) {
	if _, err := attacker.New("a", "p", core.DesignSpec{}, nil); err == nil {
		t.Error("invalid design accepted")
	}
}
