// Package modelcheck formally verifies remote-binding security properties
// by exhaustive state-space exploration — the direction the paper points
// at when it notes that vendors' homemade binding solutions "are not
// formally verified" (Section IX).
//
// A design induces a small abstract transition system: the state tracks
// who holds the binding, whether the real device still holds the current
// session credentials, and what the adversary has achieved; the moves are
// the adversary's forgeries plus the device's own re-registration. Because
// the abstraction is finite, the checker explores it to a fixpoint —
// every reachable state, not a bounded prefix — and decides four safety
// properties, producing a minimal counterexample trace for each violation.
//
// The abstraction is the third independent formalization of the binding
// semantics in this repository (after the rule-based analyzer and the
// concrete emulation); the test suite proves all three agree on every
// vendor profile and on randomly generated designs.
package modelcheck

import (
	"fmt"

	"github.com/iotbind/iotbind/internal/core"
)

// principal identifies who holds a credential or binding in the abstract
// state.
type principal uint8

// Principals.
const (
	nobody principal = iota
	victim
	adversary
)

func (p principal) String() string {
	switch p {
	case victim:
		return "victim"
	case adversary:
		return "attacker"
	default:
		return "nobody"
	}
}

// state is the abstract protocol state. It is small and comparable, so
// the reachable set is explored exactly.
type state struct {
	// bound is who the cloud's binding names.
	bound principal
	// sessTokenHolder is who received the current post-binding session
	// token (PostBindingToken designs; nobody otherwise).
	sessTokenHolder principal
	// deviceHasToken reports whether the real device holds the current
	// post-binding session token.
	deviceHasToken bool
	// deviceHasNonce reports whether the real device holds the current
	// data-session nonce (DataRequiresSession designs).
	deviceHasNonce bool
	// stoleData and injectedData are monotone achievement flags.
	stoleData    bool
	injectedData bool
}

// Move is one transition label in a counterexample trace.
type Move string

// The abstract moves.
const (
	MoveForgeRegister  Move = "forge-register"
	MoveForgeHeartbeat Move = "forge-data-heartbeat"
	MoveForgeBind      Move = "forge-bind"
	MoveForgeUnbindT1  Move = "forge-unbind-usertoken"
	MoveForgeUnbindT2  Move = "forge-unbind-devid"
	MoveDeviceRejoin   Move = "device-reregisters"
)

// Property is a verified safety property.
type Property int

// The verified properties.
const (
	// PropNoHijack: in no reachable state does the adversary hold the
	// binding while the real device would execute their commands.
	PropNoHijack Property = iota + 1
	// PropBindingPreserved: the victim's binding survives every
	// adversary behaviour (its violation is the A2/A3/A4 family's
	// disconnection effect).
	PropBindingPreserved
	// PropNoDataTheft: the adversary never receives the victim's
	// pending user data.
	PropNoDataTheft
	// PropNoDataInjection: no forged reading is ever attributed to the
	// victim's device while the victim is bound.
	PropNoDataInjection
	// PropVictimCanBind: starting from the factory state, the legitimate
	// user's setup always ends with them bound, whatever the adversary
	// did first (its violation is binding denial-of-service, A2).
	PropVictimCanBind
)

// AllProperties lists the verified properties.
func AllProperties() []Property {
	return []Property{
		PropNoHijack, PropBindingPreserved,
		PropNoDataTheft, PropNoDataInjection,
		PropVictimCanBind,
	}
}

// String implements fmt.Stringer.
func (p Property) String() string {
	switch p {
	case PropNoHijack:
		return "no-hijack"
	case PropBindingPreserved:
		return "binding-preserved"
	case PropNoDataTheft:
		return "no-data-theft"
	case PropNoDataInjection:
		return "no-data-injection"
	case PropVictimCanBind:
		return "victim-can-bind"
	default:
		return fmt.Sprintf("Property(%d)", int(p))
	}
}

// Result is the verdict for one property.
type Result struct {
	// Property is the property checked.
	Property Property
	// Holds reports whether the property holds in every reachable state.
	Holds bool
	// Counterexample is a minimal move sequence reaching a violating
	// state (nil when the property holds).
	Counterexample []Move
	// StatesExplored is the size of the reachable state space.
	StatesExplored int
}

// Check explores the design's abstract state spaces to a fixpoint — from
// the steady control state for the in-operation properties, and from the
// factory state for the setup property — and verifies every property.
func Check(design core.DesignSpec) ([]Result, error) {
	if err := design.Validate(); err != nil {
		return nil, fmt.Errorf("modelcheck: %w", err)
	}
	sys := newSystem(design)
	reachable, parents := sys.explore()

	results := make([]Result, 0, len(AllProperties()))
	for _, prop := range AllProperties() {
		if prop == PropVictimCanBind {
			results = append(results, sys.checkSetup())
			continue
		}
		res := Result{Property: prop, Holds: true, StatesExplored: len(reachable)}
		for st := range reachable {
			if sys.violates(prop, st) {
				res.Holds = false
				cex := traceTo(st, parents)
				if res.Counterexample == nil || len(cex) < len(res.Counterexample) {
					res.Counterexample = cex
				}
			}
		}
		results = append(results, res)
	}
	return results, nil
}

// MoveVictimSetup labels the victim's complete setup flow in setup-time
// counterexamples.
const MoveVictimSetup Move = "victim-setup"

// checkSetup verifies PropVictimCanBind: explore the adversary's moves
// from the factory state, then let the victim run their design's setup
// flow from every reachable state; the property is violated when any of
// those setups leaves the victim unbound.
func (s *system) checkSetup() Result {
	start := state{bound: nobody, deviceHasToken: true, deviceHasNonce: true}
	reachable := map[state]bool{start: true}
	parents := map[state]parentLink{start: {root: true}}
	frontier := []state{start}
	for len(frontier) > 0 {
		var next []state
		for _, st := range frontier {
			for _, succ := range s.successors(st) {
				if reachable[succ.to] {
					continue
				}
				reachable[succ.to] = true
				parents[succ.to] = parentLink{prev: st, move: succ.move}
				next = append(next, succ.to)
			}
		}
		frontier = next
	}

	res := Result{Property: PropVictimCanBind, Holds: true, StatesExplored: len(reachable)}
	for st := range reachable {
		if _, lockedOut := s.applySetup(st); lockedOut {
			res.Holds = false
			cex := append(traceTo(st, parents), MoveVictimSetup)
			if res.Counterexample == nil || len(cex) < len(res.Counterexample) {
				res.Counterexample = cex
			}
		}
	}
	return res
}

// applySetup runs the victim's setup flow abstractly: an existing foreign
// binding is displaced exactly when the design's own mechanics displace
// it (setup-time reset unbind, a session-tied cloud evicting on the
// device's fresh registration in flows that register before binding, or
// replace-on-bind semantics); otherwise the victim is locked out.
func (s *system) applySetup(st state) (state, bool) {
	if st.bound == adversary {
		onlineFirst := s.d.OnlineBeforeBind || s.d.BindButtonWindow || s.d.SourceIPCheck
		switch {
		case s.d.ResetUnbindsOnSetup && s.d.SupportsUnbind(core.UnbindDevIDAlone):
			// The setup-time factory reset emits Unbind:DevId.
		case s.d.SessionTiedBinding && (s.d.Binding == core.BindACLDevice || onlineFirst):
			// The device's own fresh registration evicts the squatter.
		case s.d.ReplaceOnBind || !s.d.CheckBoundUserOnBind:
			// The victim's bind displaces the squatter.
		default:
			return st, true
		}
	}
	st.bound = victim
	st.deviceHasToken = true
	st.deviceHasNonce = true
	st.sessTokenHolder = nobody
	if s.d.PostBindingToken {
		st.sessTokenHolder = victim
	}
	return st, false
}

// system is the design-specific transition relation.
type system struct {
	d core.DesignSpec
}

func newSystem(d core.DesignSpec) *system { return &system{d: d} }

// initial is the steady control state: victim bound, every credential in
// place. Unused credential dimensions are normalized so equal behaviours
// collapse to equal states.
func (s *system) initial() state {
	st := state{
		bound:          victim,
		deviceHasToken: true,
		deviceHasNonce: true,
	}
	if s.d.PostBindingToken {
		st.sessTokenHolder = victim
	}
	return st
}

// parentLink records how a state was first reached.
type parentLink struct {
	prev state
	move Move
	root bool
}

// explore runs breadth-first search to a fixpoint.
func (s *system) explore() (map[state]bool, map[state]parentLink) {
	start := s.initial()
	reachable := map[state]bool{start: true}
	parents := map[state]parentLink{start: {root: true}}
	frontier := []state{start}
	for len(frontier) > 0 {
		var next []state
		for _, st := range frontier {
			for _, succ := range s.successors(st) {
				if reachable[succ.to] {
					continue
				}
				reachable[succ.to] = true
				parents[succ.to] = parentLink{prev: st, move: succ.move}
				next = append(next, succ.to)
			}
		}
		frontier = next
	}
	return reachable, parents
}

// edge is one enabled transition.
type edge struct {
	move Move
	to   state
}

// canForge reports whether the adversary reconstructed the device-side
// message formats.
func (s *system) canForge() bool { return !s.d.FirmwareOpaque }

// deviceAuthForgeable reports whether a bare device ID passes device
// authentication.
func (s *system) deviceAuthForgeable() bool {
	return s.d.EffectiveAuth() == core.AuthDevID
}

// bindForgeable reports whether the adversary can emit an accepted-shape
// bind message at all.
func (s *system) bindForgeable() bool {
	switch s.d.Binding {
	case core.BindACLApp:
		return true
	case core.BindACLDevice:
		return s.canForge()
	default: // capability: needs the factory secret
		return false
	}
}

// windowBlocked reports bind-time co-location defences; in the steady
// state any setup-time window has long closed.
func (s *system) windowBlocked() bool {
	return s.d.BindButtonWindow || s.d.SourceIPCheck
}

// successors enumerates the enabled moves in st.
func (s *system) successors(st state) []edge {
	var out []edge

	// Adversary: forged registration (a device message).
	if s.canForge() && s.deviceAuthForgeable() {
		to := st
		if s.d.SessionTiedBinding && st.bound != nobody {
			s.revokeBinding(&to)
		}
		if s.d.DataRequiresSession {
			// The registration rotates the data-session nonce; the new
			// nonce answers to the adversary's connection, and the
			// proof it would need requires the factory secret the
			// adversary lacks — but the real device's nonce is now
			// stale.
			to.deviceHasNonce = false
		}
		out = append(out, edge{MoveForgeRegister, to})
	}

	// Adversary: forged data-bearing heartbeat.
	if s.canForge() && s.deviceAuthForgeable() && !s.d.DataRequiresSession {
		gated := s.d.PostBindingToken && st.bound != nobody && st.sessTokenHolder != adversary
		if !gated {
			to := st
			if st.bound == victim {
				to.stoleData = true
				to.injectedData = true
			}
			out = append(out, edge{MoveForgeHeartbeat, to})
		}
	}

	// Adversary: forged bind.
	if s.bindForgeable() && !s.windowBlocked() {
		replace := s.d.ReplaceOnBind || !s.d.CheckBoundUserOnBind
		if st.bound == nobody || (st.bound != adversary && replace) {
			to := st
			s.revokeBinding(&to)
			to.bound = adversary
			if s.d.PostBindingToken {
				to.sessTokenHolder = adversary
				to.deviceHasToken = false // rotated; only the binder got it
			}
			out = append(out, edge{MoveForgeBind, to})
		}
	}

	// Adversary: forged Type 1 unbind with their own token. It succeeds
	// against the victim's binding when the bound-user check is absent,
	// and trivially against their own binding.
	if s.d.SupportsUnbind(core.UnbindDevIDUserToken) && st.bound != nobody {
		if !s.d.CheckBoundUserOnUnbind || st.bound == adversary {
			to := st
			s.revokeBinding(&to)
			out = append(out, edge{MoveForgeUnbindT1, to})
		}
	}

	// Adversary: forged Type 2 unbind (a device message with no
	// authorization at all).
	if s.d.SupportsUnbind(core.UnbindDevIDAlone) && s.canForge() && st.bound != nobody {
		to := st
		s.revokeBinding(&to)
		out = append(out, edge{MoveForgeUnbindT2, to})
	}

	// Environment: the real device reconnects and resumes its session,
	// refreshing its data-session nonce. A resume is not a fresh boot:
	// it does not trigger the session-tied reset handling — that is what
	// distinguishes the real firmware's reconnect from the adversary's
	// forged registration.
	{
		to := st
		to.deviceHasNonce = true
		out = append(out, edge{MoveDeviceRejoin, to})
	}

	return out
}

// revokeBinding clears the binding and retires its session token, exactly
// as the cloud does.
func (s *system) revokeBinding(st *state) {
	st.bound = nobody
	st.sessTokenHolder = nobody
}

// deviceObeysAdversary reports whether, in st, commands issued under the
// adversary's binding reach and run on the real device.
func (s *system) deviceObeysAdversary(st state) bool {
	if st.bound != adversary {
		return false
	}
	// Dynamic device tokens: the device's session belongs to the account
	// that configured it; the cloud refuses to relay for a foreign
	// binding.
	if s.d.EffectiveAuth() == core.AuthDevToken {
		return false
	}
	// Post-binding tokens: both the controller and the device must hold
	// the current token.
	if s.d.PostBindingToken && (st.sessTokenHolder != adversary || !st.deviceHasToken) {
		return false
	}
	// Data-session designs: the device fetches commands in-session.
	if s.d.DataRequiresSession && !st.deviceHasNonce {
		return false
	}
	return true
}

// violates decides whether st violates prop.
func (s *system) violates(prop Property, st state) bool {
	switch prop {
	case PropNoHijack:
		return s.deviceObeysAdversary(st)
	case PropBindingPreserved:
		return st.bound != victim
	case PropNoDataTheft:
		return st.stoleData
	case PropNoDataInjection:
		return st.injectedData
	default:
		return false
	}
}

// traceTo reconstructs the move sequence from the initial state to st.
func traceTo(st state, parents map[state]parentLink) []Move {
	var rev []Move
	for {
		link, ok := parents[st]
		if !ok || link.root {
			break
		}
		rev = append(rev, link.move)
		st = link.prev
	}
	out := make([]Move, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}
