// Delegation sub-model: an exhaustive exploration of the delegation
// lattice's abstract behaviour under one design, deciding the A6 attack
// rows the same way the main checker decides A1–A4 — every reachable
// state, minimal counterexample traces, no bounded prefixes.
//
// The abstraction tracks one owner, one guest (A) and one sub-guest (B)
// over a single device: the owner's grant to A, A's derived grant to B,
// the delegation tokens minted for each, and an in-flight control that
// has passed token verification but not yet landed — the revocation
// race's window. Scopes are the concrete bitmask (control/read/share),
// so scope escalation is modelled exactly, not by proxy.
package modelcheck

import (
	"fmt"

	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/delegation"
)

// DelegationAttack identifies one A6 attack row.
type DelegationAttack int

// The delegation attack rows.
const (
	// AttackResidualControl is A6-1: after the owner evicts the guest,
	// some credential derived from the guest's authority still commands
	// the device.
	AttackResidualControl DelegationAttack = iota + 1
	// AttackEscalation is A6-2: a re-delegation chain ends in a grantee
	// exercising a scope its grantor never held.
	AttackEscalation
	// AttackRevocationRace is A6-3: a control that passed credential
	// verification before a revocation lands after it.
	AttackRevocationRace
)

// String implements fmt.Stringer.
func (a DelegationAttack) String() string {
	switch a {
	case AttackResidualControl:
		return "A6-1 evicted-guest-residual-control"
	case AttackEscalation:
		return "A6-2 re-delegation-privilege-escalation"
	case AttackRevocationRace:
		return "A6-3 revocation-race-window"
	default:
		return fmt.Sprintf("DelegationAttack(%d)", int(a))
	}
}

// AllDelegationAttacks lists the A6 rows in table order.
func AllDelegationAttacks() []DelegationAttack {
	return []DelegationAttack{AttackResidualControl, AttackEscalation, AttackRevocationRace}
}

// DelegationResult is the verdict for one A6 row.
type DelegationResult struct {
	// Attack is the row checked.
	Attack DelegationAttack
	// Succeeds reports whether some reachable state realizes the attack.
	Succeeds bool
	// Trace is a minimal move sequence reaching a realizing state (nil
	// when the attack is blocked).
	Trace []Move
	// StatesExplored is the size of the reachable state space.
	StatesExplored int
}

// The delegation sub-model's moves.
const (
	MoveOwnerDelegateFull     Move = "owner-delegates-guest-control"
	MoveOwnerDelegateReadOnly Move = "owner-delegates-guest-readonly"
	MoveGuestRedelegateCtl    Move = "guest-redelegates-control"
	MoveGuestRedelegateRead   Move = "guest-redelegates-read"
	MoveOwnerRevokeGuest      Move = "owner-revokes-guest"
	MoveGuestControlBegin     Move = "guest-control-verifies-token"
	MoveGuestControlLand      Move = "guest-control-lands"
	MoveSubguestControlToken  Move = "subguest-controls-with-token"
	MoveSubguestControlUser   Move = "subguest-controls-with-usertoken"
)

// dstate is the abstract delegation state. Scope fields use the concrete
// bitmask; zero means no grant.
type dstate struct {
	// aScope and bScope are the owner→guest and guest→sub-guest grants.
	aScope, bScope delegation.Scope
	// aTok and bTok report live minted delegation tokens.
	aTok, bTok bool
	// aRevoked records that the owner evicted the guest (distinguishes
	// the post-revocation aScope==0 from the initial one).
	aRevoked bool
	// inflight is a guest control past token verification, not landed.
	inflight bool
	// Monotone achievement flags.
	residual, escalated, stale bool
}

// dsystem is the design-specific delegation transition relation.
type dsystem struct {
	d core.DesignSpec
}

// authorized mirrors Lattice.Authorize for the two-hop abstraction: the
// holder's own grant carries the scope and every link of the chain to
// the owner exists. (Expiry is not modelled; the race window subsumes
// the stale-credential dimension.)
func (s *dsystem) authorizedGuest(st dstate, scope delegation.Scope) bool {
	return st.aScope.Has(scope)
}

func (s *dsystem) authorizedSub(st dstate, scope delegation.Scope) bool {
	return st.bScope.Has(scope) && st.aScope != 0
}

// successors enumerates the enabled moves in st.
func (s *dsystem) successors(st dstate) []edgeD {
	var out []edgeD

	// Owner delegates to the guest (replacing any existing grant —
	// replacement severs the derived subtree, exactly as the lattice
	// does). Minting accompanies every grant.
	grant := func(move Move, scope delegation.Scope) {
		to := st
		to.aScope = scope
		to.aTok = true
		to.aRevoked = false
		// Replacement severs B's derived grant and retires its token.
		to.bScope = 0
		to.bTok = false
		out = append(out, edgeD{move, to})
	}
	grant(MoveOwnerDelegateFull, delegation.ScopeControl|delegation.ScopeRead|delegation.ScopeShare)
	grant(MoveOwnerDelegateReadOnly, delegation.ScopeRead|delegation.ScopeShare)

	// Guest re-delegates to the sub-guest. Requires the share scope;
	// under attenuation the derived scopes must be a subset of the
	// guest's own.
	if st.aScope.Has(delegation.ScopeShare) {
		redelegate := func(move Move, scope delegation.Scope) {
			if s.d.DelegationScopeAttenuation && !st.aScope.Has(scope) {
				return
			}
			to := st
			to.bScope = scope
			to.bTok = true
			out = append(out, edgeD{move, to})
		}
		redelegate(MoveGuestRedelegateCtl, delegation.ScopeControl)
		redelegate(MoveGuestRedelegateRead, delegation.ScopeRead)
	}

	// Owner revokes the guest. The target's grant and token always go;
	// the derived subtree is severed only under cascade revocation —
	// without it, B's grant and minted token survive their parent.
	if st.aScope != 0 {
		to := st
		to.aScope = 0
		to.aTok = false
		to.aRevoked = true
		if s.d.DelegationCascadeRevoke {
			to.bScope = 0
			to.bTok = false
		}
		out = append(out, edgeD{MoveOwnerRevokeGuest, to})
	}

	// Guest control, split at the verification boundary: the token
	// passes issuer verification first (begin), authority is decided
	// when the request lands (land). A revocation between the two is
	// the race; DelegationCheckAtUse decides who wins it.
	if st.aTok && !st.inflight {
		to := st
		to.inflight = true
		out = append(out, edgeD{MoveGuestControlBegin, to})
	}
	if st.inflight {
		to := st
		to.inflight = false
		if !s.d.DelegationCheckAtUse || s.authorizedGuest(st, delegation.ScopeControl) {
			if st.aRevoked {
				// The race realizes A6-3; A6-1 is reserved for durable
				// residual authority (the orphaned subtree), not the
				// one-shot window.
				to.stale = true
			}
			out = append(out, edgeD{MoveGuestControlLand, to})
		}
	}

	// Sub-guest control with its minted delegation token: skips the
	// chain walk entirely when use-time checking is off.
	if st.bTok {
		if !s.d.DelegationCheckAtUse || s.authorizedSub(st, delegation.ScopeControl) {
			to := st
			s.markSubControl(&to, st)
			out = append(out, edgeD{MoveSubguestControlToken, to})
		}
	}

	// Sub-guest control with its own user token: always walks the
	// lattice (the use-time flag gates only the token fast path), so it
	// realizes pure scope escalation even under strict checking.
	if st.bScope != 0 {
		if s.authorizedSub(st, delegation.ScopeControl) {
			to := st
			s.markSubControl(&to, st)
			out = append(out, edgeD{MoveSubguestControlUser, to})
		}
	}

	return out
}

// markSubControl records what a landed sub-guest control achieves in st.
func (s *dsystem) markSubControl(to *dstate, st dstate) {
	if st.aRevoked {
		to.residual = true
	}
	if st.aScope != 0 && !st.aScope.Has(delegation.ScopeControl) && st.bScope.Has(delegation.ScopeControl) {
		to.escalated = true
	}
}

// realizes decides whether st realizes the attack.
func (s *dsystem) realizes(a DelegationAttack, st dstate) bool {
	switch a {
	case AttackResidualControl:
		return st.residual
	case AttackEscalation:
		return st.escalated
	case AttackRevocationRace:
		return st.stale
	default:
		return false
	}
}

// edgeD is one enabled delegation transition.
type edgeD struct {
	move Move
	to   dstate
}

type parentLinkD struct {
	prev dstate
	move Move
	root bool
}

// CheckDelegation explores the design's delegation sub-model to a
// fixpoint and decides every A6 row. The exploration is exhaustive and
// the successor order is fixed, so the verdicts — and the
// counterexample traces — are deterministic for a given design.
func CheckDelegation(design core.DesignSpec) ([]DelegationResult, error) {
	if err := design.Validate(); err != nil {
		return nil, fmt.Errorf("modelcheck: %w", err)
	}
	sys := &dsystem{d: design}
	start := dstate{}
	reachable := map[dstate]bool{start: true}
	parents := map[dstate]parentLinkD{start: {root: true}}
	frontier := []dstate{start}
	for len(frontier) > 0 {
		var next []dstate
		for _, st := range frontier {
			for _, succ := range sys.successors(st) {
				if reachable[succ.to] {
					continue
				}
				reachable[succ.to] = true
				parents[succ.to] = parentLinkD{prev: st, move: succ.move}
				next = append(next, succ.to)
			}
		}
		frontier = next
	}

	results := make([]DelegationResult, 0, 3)
	for _, a := range AllDelegationAttacks() {
		res := DelegationResult{Attack: a, StatesExplored: len(reachable)}
		for st := range reachable {
			if sys.realizes(a, st) {
				res.Succeeds = true
				cex := traceToD(st, parents)
				// Shortest trace wins; lexicographic order breaks length
				// ties so the verdict does not depend on map iteration.
				if res.Trace == nil || len(cex) < len(res.Trace) ||
					(len(cex) == len(res.Trace) && movesLess(cex, res.Trace)) {
					res.Trace = cex
				}
			}
		}
		results = append(results, res)
	}
	return results, nil
}

// movesLess orders equal-length move sequences lexicographically.
func movesLess(a, b []Move) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// traceToD reconstructs the move sequence from the initial state to st.
func traceToD(st dstate, parents map[dstate]parentLinkD) []Move {
	var rev []Move
	for {
		link, ok := parents[st]
		if !ok || link.root {
			break
		}
		rev = append(rev, link.move)
		st = link.prev
	}
	out := make([]Move, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}
