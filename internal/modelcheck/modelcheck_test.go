package modelcheck_test

import (
	"math/rand"
	"testing"

	"github.com/iotbind/iotbind/internal/analysis"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/modelcheck"
	"github.com/iotbind/iotbind/internal/vendors"
)

func resultFor(t *testing.T, results []modelcheck.Result, p modelcheck.Property) modelcheck.Result {
	t.Helper()
	for _, r := range results {
		if r.Property == p {
			return r
		}
	}
	t.Fatalf("no result for %v", p)
	return modelcheck.Result{}
}

// TestSecureDesignsVerify: the reference designs satisfy all four
// properties in every reachable state.
func TestSecureDesignsVerify(t *testing.T) {
	for _, p := range []vendors.Profile{vendors.SecureReference(), vendors.RecommendedPractice()} {
		p := p
		t.Run(p.Design.Name, func(t *testing.T) {
			results, err := modelcheck.Check(p.Design)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range results {
				if !r.Holds {
					t.Errorf("%v violated: %v", r.Property, r.Counterexample)
				}
				if r.StatesExplored == 0 {
					t.Errorf("%v explored no states", r.Property)
				}
			}
		})
	}
}

// TestTPLinkCounterexampleIsTheA4x3Chain: the minimal no-hijack
// counterexample on device #8 is exactly the paper's two-step chain.
func TestTPLinkCounterexampleIsTheA4x3Chain(t *testing.T) {
	p, ok := vendors.ByVendor("TP-LINK")
	if !ok {
		t.Fatal("no TP-LINK profile")
	}
	results, err := modelcheck.Check(p.Design)
	if err != nil {
		t.Fatal(err)
	}
	hijack := resultFor(t, results, modelcheck.PropNoHijack)
	if hijack.Holds {
		t.Fatal("no-hijack holds on TP-LINK, want violation")
	}
	want := []modelcheck.Move{modelcheck.MoveForgeUnbindT2, modelcheck.MoveForgeBind}
	if len(hijack.Counterexample) != len(want) {
		t.Fatalf("counterexample = %v, want %v", hijack.Counterexample, want)
	}
	for i := range want {
		if hijack.Counterexample[i] != want[i] {
			t.Fatalf("counterexample = %v, want %v", hijack.Counterexample, want)
		}
	}

	// Binding preservation falls with one move.
	bp := resultFor(t, results, modelcheck.PropBindingPreserved)
	if bp.Holds || len(bp.Counterexample) != 1 {
		t.Errorf("binding-preserved = %+v, want one-move violation", bp)
	}
	// Data stays safe: the in-session protection holds formally.
	if theft := resultFor(t, results, modelcheck.PropNoDataTheft); !theft.Holds {
		t.Errorf("no-data-theft violated: %v", theft.Counterexample)
	}
}

// TestDLinkDataProperties: device #10's static-ID design loses the data
// properties in one move.
func TestDLinkDataProperties(t *testing.T) {
	p, ok := vendors.ByVendor("D-LINK")
	if !ok {
		t.Fatal("no D-LINK profile")
	}
	results, err := modelcheck.Check(p.Design)
	if err != nil {
		t.Fatal(err)
	}
	for _, prop := range []modelcheck.Property{modelcheck.PropNoDataTheft, modelcheck.PropNoDataInjection} {
		r := resultFor(t, results, prop)
		if r.Holds {
			t.Errorf("%v holds on D-LINK, want violation", prop)
			continue
		}
		if len(r.Counterexample) != 1 || r.Counterexample[0] != modelcheck.MoveForgeHeartbeat {
			t.Errorf("%v counterexample = %v, want [forge-data-heartbeat]", prop, r.Counterexample)
		}
	}
	// No hijack path exists on D-LINK.
	if r := resultFor(t, results, modelcheck.PropNoHijack); !r.Holds {
		t.Errorf("no-hijack violated on D-LINK: %v", r.Counterexample)
	}
	// But the setup property falls to the one-move squat (A2).
	setup := resultFor(t, results, modelcheck.PropVictimCanBind)
	if setup.Holds {
		t.Fatal("victim-can-bind holds on D-LINK, want the A2 violation")
	}
	want := []modelcheck.Move{modelcheck.MoveForgeBind, modelcheck.MoveVictimSetup}
	if len(setup.Counterexample) != len(want) ||
		setup.Counterexample[0] != want[0] || setup.Counterexample[1] != want[1] {
		t.Errorf("A2 counterexample = %v, want %v", setup.Counterexample, want)
	}
}

// TestCheckerAgreesWithAnalyzerOnVendors: the formal verdicts must match
// the rule-based analyzer's predictions, property by property, on every
// shipped profile.
func TestCheckerAgreesWithAnalyzerOnVendors(t *testing.T) {
	all := append(vendors.Profiles(), vendors.SecureReference(), vendors.RecommendedPractice(), vendors.WorstCase())
	for _, p := range all {
		p := p
		t.Run(p.Design.Name, func(t *testing.T) {
			assertAgreement(t, p.Design)
		})
	}
}

// TestCheckerAgreesWithAnalyzerOnRandomDesigns extends the agreement to
// randomly generated designs.
func TestCheckerAgreesWithAnalyzerOnRandomDesigns(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		d := randomDesign(rng)
		if !assertAgreement(t, d) {
			t.Logf("design %d: %+v", i, d)
			return
		}
	}
}

// assertAgreement maps the analyzer's per-variant predictions onto the
// checker's property verdicts and compares.
func assertAgreement(t *testing.T, d core.DesignSpec) bool {
	t.Helper()
	results, err := modelcheck.Check(d)
	if err != nil {
		t.Errorf("design %q: %v", d.Name, err)
		return false
	}
	pred := make(map[core.AttackVariant]bool)
	for _, f := range analysis.PredictAll(d) {
		pred[f.Variant] = f.Outcome == core.OutcomeSucceeded
	}

	// The steady-state hijack paths are A4-1 and A4-3 (A4-2 needs the
	// setup window, outside the steady initial state).
	wantHijack := pred[core.VariantA4x1] || pred[core.VariantA4x3]
	// Binding loss: any unbinding variant or a hijack (which also
	// displaces the binding).
	wantBindingLoss := pred[core.VariantA3x1] || pred[core.VariantA3x2] ||
		pred[core.VariantA3x3] || pred[core.VariantA3x4] || wantHijack
	wantData := pred[core.VariantA1]
	wantDoS := pred[core.VariantA2]

	ok := true
	check := func(prop modelcheck.Property, wantViolated bool) {
		r := resultFor(t, results, prop)
		if r.Holds == wantViolated {
			t.Errorf("design %q: %v holds=%v but analyzer implies violated=%v (cex %v)",
				d.Name, prop, r.Holds, wantViolated, r.Counterexample)
			ok = false
		}
	}
	check(modelcheck.PropNoHijack, wantHijack)
	check(modelcheck.PropBindingPreserved, wantBindingLoss)
	check(modelcheck.PropNoDataTheft, wantData)
	check(modelcheck.PropNoDataInjection, wantData)
	check(modelcheck.PropVictimCanBind, wantDoS)
	return ok
}

// randomDesign mirrors the analyzer test's generator constraints.
func randomDesign(rng *rand.Rand) core.DesignSpec {
	auths := []core.DeviceAuthMode{core.AuthDevToken, core.AuthDevID, core.AuthPublicKey}
	binds := []core.BindMechanism{core.BindACLApp, core.BindACLDevice, core.BindCapability}
	d := core.DesignSpec{
		Name:                   "mc-random",
		DeviceAuth:             auths[rng.Intn(len(auths))],
		Binding:                binds[rng.Intn(len(binds))],
		CheckBoundUserOnBind:   rng.Intn(2) == 0,
		CheckBoundUserOnUnbind: rng.Intn(2) == 0,
		ReplaceOnBind:          rng.Intn(2) == 0,
		OnlineBeforeBind:       rng.Intn(2) == 0,
		SessionTiedBinding:     rng.Intn(2) == 0,
		DataRequiresSession:    rng.Intn(2) == 0,
		ResetUnbindsOnSetup:    rng.Intn(2) == 0,
		FirmwareOpaque:         rng.Intn(3) == 0,
	}
	if rng.Intn(2) == 0 {
		d.UnbindForms = append(d.UnbindForms, core.UnbindDevIDUserToken)
	}
	if rng.Intn(2) == 0 {
		d.UnbindForms = append(d.UnbindForms, core.UnbindDevIDAlone)
	}
	if d.Binding == core.BindACLApp {
		d.PostBindingToken = rng.Intn(2) == 0
		d.BindButtonWindow = rng.Intn(4) == 0
		d.SourceIPCheck = rng.Intn(4) == 0
	}
	return d
}

func TestCheckRejectsInvalidDesign(t *testing.T) {
	if _, err := modelcheck.Check(core.DesignSpec{}); err == nil {
		t.Error("invalid design accepted")
	}
}

func TestPropertyStrings(t *testing.T) {
	for _, p := range modelcheck.AllProperties() {
		if p.String() == "" {
			t.Errorf("property %d unnamed", int(p))
		}
	}
}
