package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
	"github.com/iotbind/iotbind/internal/wal"
)

// ErrNodeDown is returned by a killed node. Like cloud.ErrNotPrimary it
// carries no protocol wire code, so the retry layer keeps the request
// alive until the router swaps the promoted replica in.
var ErrNodeDown = errors.New("cluster: node is down")

// NodeConfig configures one cluster node (primary + warm replica).
type NodeConfig struct {
	// Name is the node's ring identity.
	Name string
	// Dir is the node's root; the primary lives in Dir/primary and the
	// replica in Dir/replica.
	Dir string
	// Design and Registry are shared across the fleet — every node
	// enforces the same binding design over the same device population,
	// each serving its ring slice.
	Design   core.DesignSpec
	Registry *cloud.Registry
	// Clock overrides the wall clock (testbeds).
	Clock func() time.Time
	// WALShards and WAL configure both stores' logs identically.
	WALShards int
	WAL       wal.Options
	// AckAfterReplicate ships synchronously: a mutation is acknowledged
	// only once its record is applied on the replica, so a kill loses no
	// acked operation (MaxLostAcked == 0). Off, shipping happens only
	// when something calls CatchUp — acked-but-unshipped records die
	// with the primary's disk.
	AckAfterReplicate bool
}

// Node is one cluster member: a primary Durable serving traffic, a
// follower Durable absorbing its WAL, and the Shipper between them.
// Node itself implements transport.Cloud so the router can treat it as
// a backend; after Kill every call returns ErrNodeDown until the
// harness promotes the replica and swaps it in.
type Node struct {
	name       string
	primaryDir string
	maxRecord  int // WAL record cap, for the kill-time stranded scan
	primary    *cloud.Durable
	replica    *cloud.Durable
	ship       *Shipper
	ackRep     bool

	// opMu is a genuine reader-writer drain: requests hold the read
	// side for their full duration, Kill takes the write side, so a
	// kill observes a quiesced primary and the lost-operation count is
	// exact rather than racing in-flight appends.
	opMu   sync.RWMutex
	killed bool

	// Background ship ticker (WithShipInterval). The stop channel is
	// closed — and the goroutine joined — before Kill/Promote/Close
	// take the write lock, so shutdown never deadlocks against a
	// ticking CatchUp holding the read side.
	shipStop chan struct{}
	shipOnce sync.Once
	shipWG   sync.WaitGroup
}

// Option configures node behaviour beyond the NodeConfig fields.
type Option func(*nodeOptions)

type nodeOptions struct {
	shipInterval time.Duration
}

// WithShipInterval starts a background ticker that ships the replica
// up to the primary's watermark every d — async-mode replication that
// bounds lag without coupling it to the request path. Explicit CatchUp
// calls still work; the ticker stops cleanly on Kill, Promote and
// Close. Zero or negative d disables the ticker (the default).
func WithShipInterval(d time.Duration) Option {
	return func(o *nodeOptions) { o.shipInterval = d }
}

var _ transport.Cloud = (*Node)(nil)

// NewNode opens the node's primary and replica stores. The replica
// inherits the primary's meta.json — same master seed, design and WAL
// shard layout — which is what makes shipped records replay
// byte-identically.
func NewNode(cfg NodeConfig, opts ...Option) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: node needs a name")
	}
	var no nodeOptions
	for _, opt := range opts {
		opt(&no)
	}
	primaryDir := filepath.Join(cfg.Dir, "primary")
	replicaDir := filepath.Join(cfg.Dir, "replica")
	primary, err := cloud.OpenDurable(primaryDir, cfg.Design, cfg.Registry, cloud.DurableOptions{
		WAL: cfg.WAL, WALShards: cfg.WALShards, Clock: cfg.Clock,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s primary: %w", cfg.Name, err)
	}
	if err := os.MkdirAll(replicaDir, 0o755); err != nil {
		primary.Close()
		return nil, fmt.Errorf("cluster: node %s: %w", cfg.Name, err)
	}
	meta, err := os.ReadFile(filepath.Join(primaryDir, "meta.json"))
	if err == nil {
		err = os.WriteFile(filepath.Join(replicaDir, "meta.json"), meta, 0o644)
	}
	if err != nil {
		primary.Close()
		return nil, fmt.Errorf("cluster: node %s replica meta: %w", cfg.Name, err)
	}
	replica, err := cloud.OpenDurable(replicaDir, cfg.Design, cfg.Registry, cloud.DurableOptions{
		WAL: cfg.WAL, WALShards: cfg.WALShards, Clock: cfg.Clock, Follower: true,
	})
	if err != nil {
		primary.Close()
		return nil, fmt.Errorf("cluster: node %s replica: %w", cfg.Name, err)
	}
	flush := primary.FlushWAL
	if cfg.WAL.Policy == wal.SyncEveryRecord {
		flush = nil // commit already flushed every acked frame
	}
	n := &Node{
		name:       cfg.Name,
		primaryDir: primaryDir,
		maxRecord:  cfg.WAL.MaxRecord,
		primary:    primary,
		replica:    replica,
		ship:       NewShipper(primaryDir, cfg.WAL.MaxRecord, replica, flush),
		ackRep:     cfg.AckAfterReplicate,
	}
	if no.shipInterval > 0 {
		n.shipStop = make(chan struct{})
		n.shipWG.Add(1)
		go n.shipLoop(no.shipInterval)
	}
	return n, nil
}

// shipLoop is the WithShipInterval ticker: each tick ships the replica
// up to the primary's current watermark vector. A tick racing a kill
// simply observes killed under the read lock and returns ErrNodeDown,
// which the loop ignores; the stop channel ends the loop.
func (n *Node) shipLoop(interval time.Duration) {
	defer n.shipWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-n.shipStop:
			return
		case <-t.C:
			_ = n.CatchUp()
		}
	}
}

// stopShipTicker ends the background ship loop and joins it. Must run
// before taking opMu's write side: the loop's CatchUp holds the read
// side, so waiting for it under the write lock would deadlock.
func (n *Node) stopShipTicker() {
	if n.shipStop == nil {
		return
	}
	n.shipOnce.Do(func() { close(n.shipStop) })
	n.shipWG.Wait()
}

// Name returns the node's ring identity.
func (n *Node) Name() string { return n.name }

// Primary exposes the serving store (diagnostics, snapshots).
func (n *Node) Primary() *cloud.Durable { return n.primary }

// Replica exposes the follower store.
func (n *Node) Replica() *cloud.Durable { return n.replica }

// ReplicationLag reports how many acked operations the replica is
// missing. Approximate in both directions: both sides are max
// watermarks, and the shipper reads segment files directly, so it can
// deliver a record whose lastAcked CAS on the primary has not landed
// yet — hence the clamp instead of a raw unsigned subtraction.
func (n *Node) ReplicationLag() uint64 {
	n.opMu.RLock()
	defer n.opMu.RUnlock()
	if n.killed {
		return 0
	}
	applied, shipped := n.primary.AppliedOps(), n.ship.Watermark()
	if shipped >= applied {
		return 0
	}
	return applied - shipped
}

// CatchUp ships the replica up to the primary's current per-shard
// watermark vector — the async-mode hook for periodic shipping.
func (n *Node) CatchUp() error {
	n.opMu.RLock()
	defer n.opMu.RUnlock()
	if n.killed {
		return ErrNodeDown
	}
	return n.ship.CatchUp(n.primary.ShardWatermarks())
}

// Kill models losing the primary process and its disk: in-flight
// requests drain, the shipper detaches (nothing more can be read from a
// dead disk), the primary closes, and every later request fails with
// ErrNodeDown. Returns how many acked operations the replica never
// received — the data loss a promotion inherits, zero under
// ack-after-replicate.
func (n *Node) Kill() (lost uint64, err error) {
	n.stopShipTicker()
	n.opMu.Lock()
	defer n.opMu.Unlock()
	if n.killed {
		return 0, fmt.Errorf("cluster: node %s already killed", n.name)
	}
	n.killed = true
	marks := n.ship.ShardMarks()
	n.ship.Detach()
	// Count the stranded records exactly: flush the still-live process's
	// buffers (a bookkeeping read taken before we model the disk loss),
	// then scan each shard log above its shipped mark. Subtracting max
	// watermarks would miss holes — a shard whose high LSN shipped while
	// a lower sibling's record did not reads as fully covered.
	_ = n.primary.FlushWAL()
	var scanErr error
	for shard, mark := range marks {
		dir := filepath.Join(n.primaryDir, "wal", wal.ShardDirName(shard))
		cnt, err := wal.NewTailer(dir, n.maxRecord, mark).Poll(nil)
		lost += uint64(cnt)
		if err != nil && scanErr == nil {
			scanErr = err
		}
	}
	_ = n.primary.Close()
	if scanErr != nil {
		return lost, fmt.Errorf("cluster: kill node %s: count stranded records: %w", n.name, scanErr)
	}
	return lost, nil
}

// Promote turns the replica into a primary and returns it, ready to be
// swapped in behind the node's name. Only legal after Kill.
func (n *Node) Promote() (*cloud.Durable, error) {
	n.stopShipTicker()
	n.opMu.Lock()
	defer n.opMu.Unlock()
	if !n.killed {
		return nil, fmt.Errorf("cluster: promote on live node %s", n.name)
	}
	if err := n.replica.Promote(); err != nil {
		return nil, err
	}
	return n.replica, nil
}

// Close shuts down whichever stores are still open.
func (n *Node) Close() error {
	n.stopShipTicker()
	n.opMu.Lock()
	defer n.opMu.Unlock()
	var first error
	if !n.killed {
		n.killed = true
		n.ship.Detach()
		if err := n.primary.Close(); err != nil {
			first = err
		}
	}
	if err := n.replica.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// run executes one request against the primary, shipping before the ack
// under the ack-after-replicate policy. The replication step runs while
// still holding the read side, so a kill can never slip between a
// request's apply and its ship.
func run[T any](n *Node, call func(*cloud.Durable) (T, error)) (T, error) {
	var zero T
	n.opMu.RLock()
	defer n.opMu.RUnlock()
	if n.killed {
		return zero, ErrNodeDown
	}
	resp, err := call(n.primary)
	if err != nil {
		return zero, err
	}
	if n.ackRep {
		if serr := n.ship.CatchUp(n.primary.ShardWatermarks()); serr != nil {
			// The operation applied on the primary but its record never
			// reached the replica: under ack-after-replicate that is a
			// failed request (the caller retries; keyed operations
			// dedup on redelivery).
			return zero, fmt.Errorf("cluster: node %s replicate: %w", n.name, serr)
		}
	}
	return resp, nil
}

func (n *Node) RegisterUser(req protocol.RegisterUserRequest) error {
	_, err := run(n, func(d *cloud.Durable) (struct{}, error) {
		return struct{}{}, d.RegisterUser(req)
	})
	return err
}

func (n *Node) Login(req protocol.LoginRequest) (protocol.LoginResponse, error) {
	return run(n, func(d *cloud.Durable) (protocol.LoginResponse, error) { return d.Login(req) })
}

func (n *Node) RequestDeviceToken(req protocol.DeviceTokenRequest) (protocol.DeviceTokenResponse, error) {
	return run(n, func(d *cloud.Durable) (protocol.DeviceTokenResponse, error) { return d.RequestDeviceToken(req) })
}

func (n *Node) RequestBindToken(req protocol.BindTokenRequest) (protocol.BindTokenResponse, error) {
	return run(n, func(d *cloud.Durable) (protocol.BindTokenResponse, error) { return d.RequestBindToken(req) })
}

func (n *Node) HandleStatus(req protocol.StatusRequest) (protocol.StatusResponse, error) {
	return run(n, func(d *cloud.Durable) (protocol.StatusResponse, error) { return d.HandleStatus(req) })
}

func (n *Node) HandleStatusBatch(req protocol.StatusBatchRequest) (protocol.StatusBatchResponse, error) {
	return run(n, func(d *cloud.Durable) (protocol.StatusBatchResponse, error) { return d.HandleStatusBatch(req) })
}

func (n *Node) HandleBind(req protocol.BindRequest) (protocol.BindResponse, error) {
	return run(n, func(d *cloud.Durable) (protocol.BindResponse, error) { return d.HandleBind(req) })
}

func (n *Node) HandleUnbind(req protocol.UnbindRequest) error {
	_, err := run(n, func(d *cloud.Durable) (struct{}, error) {
		return struct{}{}, d.HandleUnbind(req)
	})
	return err
}

func (n *Node) HandleControl(req protocol.ControlRequest) (protocol.ControlResponse, error) {
	return run(n, func(d *cloud.Durable) (protocol.ControlResponse, error) { return d.HandleControl(req) })
}

func (n *Node) PushUserData(req protocol.PushUserDataRequest) error {
	_, err := run(n, func(d *cloud.Durable) (struct{}, error) {
		return struct{}{}, d.PushUserData(req)
	})
	return err
}

func (n *Node) Readings(req protocol.ReadingsRequest) (protocol.ReadingsResponse, error) {
	return run(n, func(d *cloud.Durable) (protocol.ReadingsResponse, error) { return d.Readings(req) })
}

func (n *Node) HandleShare(req protocol.ShareRequest) error {
	_, err := run(n, func(d *cloud.Durable) (struct{}, error) {
		return struct{}{}, d.HandleShare(req)
	})
	return err
}

func (n *Node) Shares(req protocol.SharesRequest) (protocol.SharesResponse, error) {
	return run(n, func(d *cloud.Durable) (protocol.SharesResponse, error) { return d.Shares(req) })
}

func (n *Node) HandleDelegate(req protocol.DelegateRequest) (protocol.DelegateResponse, error) {
	return run(n, func(d *cloud.Durable) (protocol.DelegateResponse, error) { return d.HandleDelegate(req) })
}

func (n *Node) HandleRevokeDelegation(req protocol.RevokeDelegationRequest) error {
	_, err := run(n, func(d *cloud.Durable) (struct{}, error) {
		return struct{}{}, d.HandleRevokeDelegation(req)
	})
	return err
}

func (n *Node) ListDelegations(req protocol.ListDelegationsRequest) (protocol.ListDelegationsResponse, error) {
	return run(n, func(d *cloud.Durable) (protocol.ListDelegationsResponse, error) { return d.ListDelegations(req) })
}

func (n *Node) ShadowState(req protocol.ShadowStateRequest) (protocol.ShadowStateResponse, error) {
	return run(n, func(d *cloud.Durable) (protocol.ShadowStateResponse, error) { return d.ShadowState(req) })
}
