package cluster_test

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/cluster"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/testbed"
	"github.com/iotbind/iotbind/internal/transport"
	"github.com/iotbind/iotbind/internal/wal"
)

// TestClusterSmoke is the `make cluster-smoke` gate: three nodes, one
// mid-run primary kill, ack-after-replicate — the merged final state
// must match the single-node reference byte for byte with zero acked
// operations lost. Kept intentionally small so it earns a slot in ci.
func TestClusterSmoke(t *testing.T) {
	res, err := testbed.RunClusterLoad(testbed.ClusterLoadConfig{
		Dir:               t.TempDir(),
		Nodes:             3,
		Devices:           9,
		Heartbeats:        6,
		ReadingEvery:      2,
		Workers:           3,
		Kills:             1,
		AckAfterReplicate: true,
	})
	if err != nil {
		t.Fatalf("cluster smoke: %v", err)
	}
	if !res.StateVerified {
		t.Fatal("cluster smoke: merged state was not verified")
	}
	if res.MaxLostAcked != 0 {
		t.Fatalf("cluster smoke: lost %d acked operations", res.MaxLostAcked)
	}
	t.Logf("cluster smoke: %d msgs, %d kill(s), %.0f msg/s, state verified",
		res.Messages, res.Kills, res.MsgsPerSec)
}

// BenchmarkClusterStatus measures keyed heartbeat throughput through the
// full cluster path — ring lookup, switchable indirection, primary
// apply, synchronous WAL ship to the replica — the per-message cost of
// the failover guarantee (compare BenchmarkDurableStatus for the
// single-store baseline).
func BenchmarkClusterStatus(b *testing.B) {
	const nodes = 3
	at := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return at }

	ids := make([]string, 64)
	reg := cloud.NewRegistry()
	for i := range ids {
		ids[i] = fmt.Sprintf("AA:BB:CC:BE:%02X:%02X", (i>>8)&0xff, i&0xff)
		if err := reg.Add(cloud.DeviceRecord{ID: ids[i], FactorySecret: "factory-secret-" + ids[i], Model: "bench"}); err != nil {
			b.Fatal(err)
		}
	}

	names := make([]string, nodes)
	members := make(map[string]*transport.Switchable, nodes)
	for k := 0; k < nodes; k++ {
		names[k] = fmt.Sprintf("node-%d", k)
		n, err := cluster.NewNode(cluster.NodeConfig{
			Name:              names[k],
			Dir:               filepath.Join(b.TempDir(), names[k]),
			Design:            testbed.ClusterLabDesign(),
			Registry:          reg,
			Clock:             clock,
			WALShards:         4,
			WAL:               wal.Options{Policy: wal.SyncOff},
			AckAfterReplicate: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer n.Close()
		members[names[k]] = transport.NewSwitchable(n)
	}
	ring, err := cluster.NewRing(names, 0)
	if err != nil {
		b.Fatal(err)
	}
	router, err := cluster.NewRouter(ring, members)
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range ids {
		if _, err := router.HandleStatus(protocol.StatusRequest{Kind: protocol.StatusRegister, DeviceID: id}); err != nil {
			b.Fatal(err)
		}
	}

	var seq atomic.Uint64
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			// Unique keys force every heartbeat through the WAL and the
			// synchronous ship — the path being priced.
			n := seq.Add(1)
			req := protocol.StatusRequest{
				Kind:           protocol.StatusHeartbeat,
				DeviceID:       ids[n%uint64(len(ids))],
				IdempotencyKey: fmt.Sprintf("bench-%d", n),
			}
			if _, err := router.HandleStatus(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}
