package cluster

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/wal"
)

func labDesign() core.DesignSpec {
	return core.DesignSpec{
		Name:                 "cluster-lab",
		DeviceAuth:           core.AuthDevID,
		Binding:              core.BindACLDevice,
		UnbindForms:          []core.UnbindForm{core.UnbindDevIDAlone},
		CheckBoundUserOnBind: true,
	}
}

func labClock() func() time.Time {
	at := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	return func() time.Time { return at }
}

func labRegistry(t *testing.T, ids ...string) *cloud.Registry {
	t.Helper()
	reg := cloud.NewRegistry()
	for _, id := range ids {
		if err := reg.Add(cloud.DeviceRecord{ID: id, FactorySecret: "factory-secret-" + id, Model: "lab"}); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func newLabNode(t *testing.T, name string, ack bool, ids ...string) *Node {
	t.Helper()
	n, err := NewNode(NodeConfig{
		Name:              name,
		Dir:               filepath.Join(t.TempDir(), name),
		Design:            labDesign(),
		Registry:          labRegistry(t, ids...),
		Clock:             labClock(),
		WALShards:         4,
		WAL:               wal.Options{Policy: wal.SyncOff},
		AckAfterReplicate: ack,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

const labDev = "AA:BB:CC:01:02:03"

func driveNode(t *testing.T, n *Node) {
	t.Helper()
	if err := n.RegisterUser(protocol.RegisterUserRequest{UserID: "u@lab", Password: "pw"}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.HandleStatus(protocol.StatusRequest{Kind: protocol.StatusRegister, DeviceID: labDev}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.HandleBind(protocol.BindRequest{
		DeviceID: labDev, UserID: "u@lab", UserPassword: "pw", IdempotencyKey: "bind-1",
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := n.HandleStatus(protocol.StatusRequest{
			Kind: protocol.StatusHeartbeat, DeviceID: labDev,
			IdempotencyKey: "hb-" + string(rune('a'+i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestNodeAckAfterReplicateKeepsReplicaCurrent: with synchronous
// shipping every ack implies the replica already holds the record, so
// lag is zero at any observation point and a kill loses nothing.
func TestNodeAckAfterReplicateKeepsReplicaCurrent(t *testing.T) {
	n := newLabNode(t, "n0", true, labDev)
	driveNode(t, n)
	if lag := n.ReplicationLag(); lag != 0 {
		t.Fatalf("lag = %d under ack-after-replicate", lag)
	}
	lost, err := n.Kill()
	if err != nil {
		t.Fatal(err)
	}
	if lost != 0 {
		t.Fatalf("kill lost %d acked operations under ack-after-replicate", lost)
	}

	// Down means down, with the retryable marker error.
	if _, err := n.HandleStatus(protocol.StatusRequest{Kind: protocol.StatusHeartbeat, DeviceID: labDev}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("killed node returned %v, want ErrNodeDown", err)
	}

	promoted, err := n.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if promoted.IsFollower() {
		t.Fatal("promoted replica still a follower")
	}
	// The promoted store carries the full acked history and serves
	// immediately.
	resp, err := promoted.HandleStatus(protocol.StatusRequest{Kind: protocol.StatusHeartbeat, DeviceID: labDev})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Bound {
		t.Fatal("promoted replica lost the binding")
	}
}

// TestNodeAsyncShippingLosesUnshippedAcks: without ack-after-replicate
// nothing ships until CatchUp runs, so a kill strands every acked
// operation since the last CatchUp — exactly what Kill must report.
func TestNodeAsyncShippingLosesUnshippedAcks(t *testing.T) {
	n := newLabNode(t, "n0", false, labDev)
	driveNode(t, n)
	if lag := n.ReplicationLag(); lag == 0 {
		t.Fatal("async node reports zero lag with nothing shipped")
	}
	// One explicit catch-up drains the backlog...
	if err := n.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if lag := n.ReplicationLag(); lag != 0 {
		t.Fatalf("lag = %d after CatchUp", lag)
	}
	// ...and acks after it are stranded by a kill.
	if _, err := n.HandleStatus(protocol.StatusRequest{
		Kind: protocol.StatusHeartbeat, DeviceID: labDev, IdempotencyKey: "hb-tail",
	}); err != nil {
		t.Fatal(err)
	}
	lost, err := n.Kill()
	if err != nil {
		t.Fatal(err)
	}
	if lost != 1 {
		t.Fatalf("kill reported %d lost acks, want 1", lost)
	}
}

func TestNodeLifecycleGuards(t *testing.T) {
	n := newLabNode(t, "n0", true, labDev)
	if _, err := n.Promote(); err == nil {
		t.Fatal("promote on a live node accepted")
	}
	if _, err := n.Kill(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Kill(); err == nil {
		t.Fatal("double kill accepted")
	}
	if err := n.CatchUp(); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("CatchUp on killed node: %v, want ErrNodeDown", err)
	}
	if _, err := n.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

// ErrNodeDown must stay retryable: the failover story depends on the
// retry layer carrying requests across the kill→promote→swap window.
func TestErrNodeDownHasNoWireCode(t *testing.T) {
	if code, ok := protocol.WireCode(ErrNodeDown); ok {
		t.Fatalf("ErrNodeDown carries wire code %q; the retry layer would give up on failovers", code)
	}
}

// TestNodeShipIntervalDrainsLagInBackground: WithShipInterval turns
// explicit CatchUp calls into a background ticker — lag drains without
// anyone asking — and the ticker stops cleanly on Kill (no goroutine
// racing the poisoned store) and on Promote.
func TestNodeShipIntervalDrainsLagInBackground(t *testing.T) {
	n, err := NewNode(NodeConfig{
		Name:      "n0",
		Dir:       filepath.Join(t.TempDir(), "n0"),
		Design:    labDesign(),
		Registry:  labRegistry(t, labDev),
		Clock:     labClock(),
		WALShards: 4,
		WAL:       wal.Options{Policy: wal.SyncOff},
	}, WithShipInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })

	driveNode(t, n)
	deadline := time.Now().Add(5 * time.Second)
	for n.ReplicationLag() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background ticker never drained the lag (still %d)", n.ReplicationLag())
		}
		time.Sleep(time.Millisecond)
	}

	// Explicit CatchUp still works alongside the ticker.
	if _, err := n.HandleStatus(protocol.StatusRequest{
		Kind: protocol.StatusHeartbeat, DeviceID: labDev, IdempotencyKey: "hb-x",
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.CatchUp(); err != nil {
		t.Fatal(err)
	}

	// Kill stops the ticker before poisoning the store; the shipped
	// replica promotes with the full history.
	if _, err := n.Kill(); err != nil {
		t.Fatal(err)
	}
	promoted, err := n.Promote()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := promoted.HandleStatus(protocol.StatusRequest{Kind: protocol.StatusHeartbeat, DeviceID: labDev})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Bound {
		t.Fatal("promoted replica lost the binding shipped by the ticker")
	}
}
