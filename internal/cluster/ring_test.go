package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnershipIsDeterministic(t *testing.T) {
	a, err := NewRing([]string{"node-2", "node-0", "node-1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same membership in a different insertion order must hash out to
	// the identical key→node map.
	b, err := NewRing([]string{"node-0", "node-1", "node-2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("AA:BB:CC:00:%02X:%02X", (i>>8)&0xff, i&0xff)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %s: owner %s vs %s", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r, err := NewRing([]string{"node-0", "node-1", "node-2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("AA:BB:CC:%02X:%02X:%02X", (i>>16)&0xff, (i>>8)&0xff, i&0xff))]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 nodes own keys: %v", len(counts), counts)
	}
	// 64 virtual points per node keeps a 3-way split well inside a 2x
	// band around the fair share; a grossly lopsided ring would break
	// the cluster's scaling story.
	for node, n := range counts {
		if n < keys/6 || n > keys/2+keys/6 {
			t.Fatalf("node %s owns %d of %d keys: %v", node, n, keys, counts)
		}
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty node name accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate node name accepted")
	}
}

func TestRingNodesIsACopy(t *testing.T) {
	r, err := NewRing([]string{"b", "a"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	nodes := r.Nodes()
	if len(nodes) != 2 || nodes[0] != "a" || nodes[1] != "b" {
		t.Fatalf("Nodes() = %v, want sorted [a b]", nodes)
	}
	nodes[0] = "mutated"
	if r.Nodes()[0] != "a" {
		t.Fatal("Nodes() exposed internal slice")
	}
}
