package cluster

import (
	"errors"
	"testing"
)

// TestShipperRetriesPendingAfterTransientFailure pins the pending
// buffer: a tailer never re-reads what it already delivered, so when a
// ship fails mid-pass the collected-but-unshipped records must survive
// in the shipper and go out on the next pass. Without the buffer the
// tailers are past them, every later CatchUp reports "shipping
// stalled", and the replica can never catch up even though the failure
// was transient.
func TestShipperRetriesPendingAfterTransientFailure(t *testing.T) {
	n := newLabNode(t, "n0", false, labDev)
	driveNode(t, n)

	errInjected := errors.New("injected transient ship failure")
	real := n.ship.ship
	calls := 0
	n.ship.mu.Lock()
	n.ship.ship = func(shard int, lsn uint64, payload []byte) error {
		calls++
		if calls == 1 {
			return errInjected
		}
		return real(shard, lsn, payload)
	}
	n.ship.mu.Unlock()

	// First pass polls the whole backlog, then fails on the very first
	// delivery: everything is now invisible to the tailers.
	if err := n.CatchUp(); !errors.Is(err, errInjected) {
		t.Fatalf("CatchUp = %v, want the injected failure", err)
	}
	if lag := n.ReplicationLag(); lag == 0 {
		t.Fatal("zero lag reported after a failed pass")
	}

	// The retry drains the pending buffer and fully catches up.
	if err := n.CatchUp(); err != nil {
		t.Fatalf("CatchUp retry = %v, want success", err)
	}
	if lag := n.ReplicationLag(); lag != 0 {
		t.Fatalf("lag = %d after successful retry", lag)
	}
	want := n.primary.ShardWatermarks()
	got := n.replica.ShardWatermarks()
	for i := range want {
		if got[i] < want[i] {
			t.Fatalf("replica shard %d at %d, primary at %d", i, got[i], want[i])
		}
	}
	lost, err := n.Kill()
	if err != nil {
		t.Fatal(err)
	}
	if lost != 0 {
		t.Fatalf("kill after full catch-up reported %d lost acks", lost)
	}
}

// TestShipperDetachedShortOfTargetErrors: once the primary's disk is
// gone, a target the shipped marks don't cover can never be reached —
// that must surface as an error, not a silent success that lets an
// unreplicated operation ack.
func TestShipperDetachedShortOfTargetErrors(t *testing.T) {
	n := newLabNode(t, "n0", false, labDev)
	driveNode(t, n)
	n.ship.Detach()
	if err := n.ship.CatchUp(n.primary.ShardWatermarks()); err == nil {
		t.Fatal("detached shipper reported a target it never covered as reached")
	}
	// A covered target is still fine after detach.
	if err := n.ship.CatchUp(n.ship.ShardMarks()); err != nil {
		t.Fatalf("detached shipper failed an already-covered target: %v", err)
	}
}

// TestShipperRejectsMismatchedTargetVector: a target naming the wrong
// number of shards is a layout bug, not a catch-up request.
func TestShipperRejectsMismatchedTargetVector(t *testing.T) {
	n := newLabNode(t, "n0", false, labDev)
	if err := n.ship.CatchUp(make([]uint64, 1)); err == nil {
		t.Fatal("mismatched target vector accepted")
	}
}

// TestReplicationLagClampsShippedAhead: the shipper reads segment
// files directly, so it can deliver a record whose lastAcked CAS on
// the primary has not landed yet. The lag report must clamp to zero
// instead of underflowing to ~2^64.
func TestReplicationLagClampsShippedAhead(t *testing.T) {
	n := newLabNode(t, "n0", false, labDev)
	driveNode(t, n)
	n.ship.mu.Lock()
	n.ship.shipped = n.primary.AppliedOps() + 3
	n.ship.mu.Unlock()
	if lag := n.ReplicationLag(); lag != 0 {
		t.Fatalf("lag = %d, want 0 while the shipper runs ahead of the ack watermark", lag)
	}
}
