package cluster

import (
	"fmt"
	"sync"

	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
)

// Router fronts the fleet as one transport.Cloud: device-addressed
// requests go to the ring owner of the device ID, account-addressed
// ones to the owner of the user ID, and account creation broadcasts
// (any node may later authenticate the user for its own devices'
// binds). Each member sits behind a transport.Switchable, so a
// failover — swap the promoted replica in behind the dead primary's
// name — is invisible to the router and to every agent above it.
type Router struct {
	ring    *Ring
	members map[string]*transport.Switchable
}

var _ transport.Cloud = (*Router)(nil)

// NewRouter builds a router over the ring's members. members must hold
// exactly the ring's node names.
func NewRouter(ring *Ring, members map[string]*transport.Switchable) (*Router, error) {
	for _, name := range ring.Nodes() {
		if members[name] == nil {
			return nil, fmt.Errorf("cluster: router missing member %q", name)
		}
	}
	if len(members) != len(ring.Nodes()) {
		return nil, fmt.Errorf("cluster: router has %d members for a %d-node ring", len(members), len(ring.Nodes()))
	}
	return &Router{ring: ring, members: members}, nil
}

// Member returns the Switchable behind a node name (the failover hook).
func (r *Router) Member(name string) *transport.Switchable { return r.members[name] }

// Ring returns the ring (ownership diagnostics).
func (r *Router) Ring() *Ring { return r.ring }

// owner resolves the backend serving key.
func (r *Router) owner(key string) transport.Cloud {
	return r.members[r.ring.Owner(key)]
}

// RegisterUser broadcasts: accounts must exist everywhere because a
// bind authenticating (UserID, password) lands on the device's owner,
// not the account's. First error wins; a retry after partial success
// reports user-exists from the nodes that already accepted it, so
// harnesses create accounts before any failover window (see DESIGN §10).
func (r *Router) RegisterUser(req protocol.RegisterUserRequest) error {
	for _, name := range r.ring.Nodes() {
		if err := r.members[name].RegisterUser(req); err != nil {
			return err
		}
	}
	return nil
}

// Login routes to the account owner: the token it issues verifies only
// there, so every later token-bearing call for it must route the same
// way — which UserID-keyed routing guarantees.
func (r *Router) Login(req protocol.LoginRequest) (protocol.LoginResponse, error) {
	return r.owner(req.UserID).Login(req)
}

func (r *Router) RequestDeviceToken(req protocol.DeviceTokenRequest) (protocol.DeviceTokenResponse, error) {
	return r.owner(req.DeviceID).RequestDeviceToken(req)
}

func (r *Router) RequestBindToken(req protocol.BindTokenRequest) (protocol.BindTokenResponse, error) {
	return r.owner(req.DeviceID).RequestBindToken(req)
}

func (r *Router) HandleStatus(req protocol.StatusRequest) (protocol.StatusResponse, error) {
	return r.owner(req.DeviceID).HandleStatus(req)
}

// HandleStatusBatch splits the batch by owner, dispatches the sub-
// batches concurrently and stitches the per-item results back into
// request order. A sub-batch envelope failure fails the whole batch —
// the batch contract is all-or-nothing at the envelope level, and the
// retry layer redelivers with the same item keys, so accepted items on
// other nodes dedup.
func (r *Router) HandleStatusBatch(req protocol.StatusBatchRequest) (protocol.StatusBatchResponse, error) {
	if len(req.Items) == 0 {
		return protocol.StatusBatchResponse{}, nil
	}
	type split struct {
		sub     protocol.StatusBatchRequest
		indices []int
	}
	splits := make(map[string]*split)
	order := make([]string, 0, 1)
	for i := range req.Items {
		name := r.ring.Owner(req.Items[i].DeviceID)
		sp := splits[name]
		if sp == nil {
			sp = &split{sub: protocol.StatusBatchRequest{SourceIP: req.SourceIP}}
			splits[name] = sp
			order = append(order, name)
		}
		sp.sub.Items = append(sp.sub.Items, req.Items[i])
		sp.indices = append(sp.indices, i)
	}
	if len(splits) == 1 {
		return r.members[order[0]].HandleStatusBatch(req)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	out := protocol.StatusBatchResponse{Results: make([]protocol.StatusBatchResult, len(req.Items))}
	for _, name := range order {
		sp := splits[name]
		backend := r.members[name]
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := backend.HandleStatusBatch(sp.sub)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			for j, idx := range sp.indices {
				out.Results[idx] = resp.Results[j]
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return protocol.StatusBatchResponse{}, firstErr
	}
	return out, nil
}

func (r *Router) HandleBind(req protocol.BindRequest) (protocol.BindResponse, error) {
	return r.owner(req.DeviceID).HandleBind(req)
}

func (r *Router) HandleUnbind(req protocol.UnbindRequest) error {
	return r.owner(req.DeviceID).HandleUnbind(req)
}

func (r *Router) HandleControl(req protocol.ControlRequest) (protocol.ControlResponse, error) {
	return r.owner(req.DeviceID).HandleControl(req)
}

func (r *Router) PushUserData(req protocol.PushUserDataRequest) error {
	return r.owner(req.DeviceID).PushUserData(req)
}

func (r *Router) Readings(req protocol.ReadingsRequest) (protocol.ReadingsResponse, error) {
	return r.owner(req.DeviceID).Readings(req)
}

func (r *Router) HandleShare(req protocol.ShareRequest) error {
	return r.owner(req.DeviceID).HandleShare(req)
}

func (r *Router) Shares(req protocol.SharesRequest) (protocol.SharesResponse, error) {
	return r.owner(req.DeviceID).Shares(req)
}

func (r *Router) HandleDelegate(req protocol.DelegateRequest) (protocol.DelegateResponse, error) {
	return r.owner(req.DeviceID).HandleDelegate(req)
}

func (r *Router) HandleRevokeDelegation(req protocol.RevokeDelegationRequest) error {
	return r.owner(req.DeviceID).HandleRevokeDelegation(req)
}

func (r *Router) ListDelegations(req protocol.ListDelegationsRequest) (protocol.ListDelegationsResponse, error) {
	return r.owner(req.DeviceID).ListDelegations(req)
}

func (r *Router) ShadowState(req protocol.ShadowStateRequest) (protocol.ShadowStateResponse, error) {
	return r.owner(req.DeviceID).ShadowState(req)
}
