package cluster

import (
	"errors"
	"fmt"
	"testing"

	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
)

// stampCloud is a fake backend that stamps every response with its own
// name, so routing and batch stitching are observable without real
// stores. Unimplemented methods panic via the embedded nil interface.
type stampCloud struct {
	transport.Cloud
	name  string
	users []string
	fail  error
}

func (s *stampCloud) RegisterUser(req protocol.RegisterUserRequest) error {
	if s.fail != nil {
		return s.fail
	}
	s.users = append(s.users, req.UserID)
	return nil
}

func (s *stampCloud) HandleStatus(req protocol.StatusRequest) (protocol.StatusResponse, error) {
	if s.fail != nil {
		return protocol.StatusResponse{}, s.fail
	}
	return protocol.StatusResponse{SessionNonce: s.name + "/" + req.DeviceID}, nil
}

func (s *stampCloud) HandleStatusBatch(req protocol.StatusBatchRequest) (protocol.StatusBatchResponse, error) {
	if s.fail != nil {
		return protocol.StatusBatchResponse{}, s.fail
	}
	resp := protocol.StatusBatchResponse{Results: make([]protocol.StatusBatchResult, len(req.Items))}
	for i, item := range req.Items {
		resp.Results[i] = protocol.StatusBatchResult{
			Response: protocol.StatusResponse{SessionNonce: s.name + "/" + item.DeviceID},
		}
	}
	return resp, nil
}

func newStampRouter(t *testing.T, names ...string) (*Router, map[string]*stampCloud) {
	t.Helper()
	ring, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	backends := make(map[string]*stampCloud, len(names))
	members := make(map[string]*transport.Switchable, len(names))
	for _, name := range names {
		backends[name] = &stampCloud{name: name}
		members[name] = transport.NewSwitchable(backends[name])
	}
	r, err := NewRouter(ring, members)
	if err != nil {
		t.Fatal(err)
	}
	return r, backends
}

func TestRouterRoutesByRingOwner(t *testing.T) {
	r, _ := newStampRouter(t, "node-0", "node-1", "node-2")
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("AA:BB:CC:00:%02X:%02X", (i>>8)&0xff, i&0xff)
		resp, err := r.HandleStatus(protocol.StatusRequest{Kind: protocol.StatusHeartbeat, DeviceID: id})
		if err != nil {
			t.Fatal(err)
		}
		if want := r.Ring().Owner(id) + "/" + id; resp.SessionNonce != want {
			t.Fatalf("device %s served by %q, want %q", id, resp.SessionNonce, want)
		}
	}
}

func TestRouterBatchSplitsAndStitchesInOrder(t *testing.T) {
	r, _ := newStampRouter(t, "node-0", "node-1", "node-2")
	var req protocol.StatusBatchRequest
	owners := make(map[string]bool)
	for i := 0; i < 60; i++ {
		id := fmt.Sprintf("AA:BB:CC:01:%02X:%02X", (i>>8)&0xff, i&0xff)
		req.Items = append(req.Items, protocol.StatusRequest{Kind: protocol.StatusHeartbeat, DeviceID: id})
		owners[r.Ring().Owner(id)] = true
	}
	if len(owners) < 2 {
		t.Fatalf("test fleet landed on %d owner(s); want a genuinely split batch", len(owners))
	}
	resp, err := r.HandleStatusBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(req.Items) {
		t.Fatalf("got %d results for %d items", len(resp.Results), len(req.Items))
	}
	// Every slot must hold the answer for ITS item, computed by that
	// item's ring owner — the stitching contract.
	for i, item := range req.Items {
		want := r.Ring().Owner(item.DeviceID) + "/" + item.DeviceID
		if resp.Results[i].Response.SessionNonce != want {
			t.Fatalf("item %d stamped %q, want %q", i, resp.Results[i].Response.SessionNonce, want)
		}
	}
}

func TestRouterBatchEnvelopeErrorFailsWholeBatch(t *testing.T) {
	r, backends := newStampRouter(t, "node-0", "node-1", "node-2")
	boom := errors.New("backend down")
	var req protocol.StatusBatchRequest
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("AA:BB:CC:02:%02X:%02X", (i>>8)&0xff, i&0xff)
		req.Items = append(req.Items, protocol.StatusRequest{Kind: protocol.StatusHeartbeat, DeviceID: id})
	}
	// Fail whichever owner serves the first item.
	backends[r.Ring().Owner(req.Items[0].DeviceID)].fail = boom
	if _, err := r.HandleStatusBatch(req); !errors.Is(err, boom) {
		t.Fatalf("split batch with one dead owner returned %v, want the backend error", err)
	}
}

func TestRouterEmptyBatch(t *testing.T) {
	r, _ := newStampRouter(t, "node-0", "node-1")
	resp, err := r.HandleStatusBatch(protocol.StatusBatchRequest{})
	if err != nil || len(resp.Results) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(resp.Results))
	}
}

func TestRouterBroadcastsRegisterUser(t *testing.T) {
	r, backends := newStampRouter(t, "node-0", "node-1", "node-2")
	if err := r.RegisterUser(protocol.RegisterUserRequest{UserID: "u@lab", Password: "pw"}); err != nil {
		t.Fatal(err)
	}
	for name, b := range backends {
		if len(b.users) != 1 || b.users[0] != "u@lab" {
			t.Fatalf("node %s saw users %v, want [u@lab]", name, b.users)
		}
	}
}

func TestRouterRejectsMismatchedMembership(t *testing.T) {
	ring, err := NewRing([]string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	members := map[string]*transport.Switchable{"a": transport.NewSwitchable(&stampCloud{name: "a"})}
	if _, err := NewRouter(ring, members); err == nil {
		t.Fatal("router accepted a member set missing a ring node")
	}
	members["b"] = transport.NewSwitchable(&stampCloud{name: "b"})
	members["c"] = transport.NewSwitchable(&stampCloud{name: "c"})
	if _, err := NewRouter(ring, members); err == nil {
		t.Fatal("router accepted extra members outside the ring")
	}
}

// TestRouterFailoverViaSwap is the membership-swap contract end to end:
// requests for a name reach whatever backend currently sits behind its
// Switchable, with the ring untouched.
func TestRouterFailoverViaSwap(t *testing.T) {
	r, _ := newStampRouter(t, "node-0", "node-1")
	id := "AA:BB:CC:03:00:01"
	owner := r.Ring().Owner(id)
	replacement := &stampCloud{name: "promoted-" + owner}
	r.Member(owner).Swap(replacement)
	resp, err := r.HandleStatus(protocol.StatusRequest{Kind: protocol.StatusHeartbeat, DeviceID: id})
	if err != nil {
		t.Fatal(err)
	}
	if want := "promoted-" + owner + "/" + id; resp.SessionNonce != want {
		t.Fatalf("after swap, device served by %q, want %q", resp.SessionNonce, want)
	}
}
