// Package cluster turns N durable cloud nodes into one logical cloud:
// a consistent-hash ring assigns every device (and user account) to an
// owner node, a router implementing transport.Cloud dispatches each
// request to its owner, and each node ships its WAL to a warm replica
// that takes over on a kill. Devices, apps, retry wrappers and both
// front ends work against the router unchanged — the fleet looks like
// the single cloud the paper's binding model assumes.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// defaultVirtualNodes is how many ring points each node contributes.
// Enough that a 3-node ring splits keys within a few percent of evenly;
// few enough that Owner's binary search stays trivially cheap.
const defaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over node names. Ownership
// of a key is the first ring point clockwise from the key's hash.
// Immutability is deliberate: membership changes in this design are
// failovers — a replica takes over its dead primary's slice under the
// same node name — so the key→node map never moves, only the backend
// behind the name (a transport.Switchable) does.
type Ring struct {
	points []ringPoint
	nodes  []string
}

type ringPoint struct {
	hash uint32
	node string
}

// NewRing builds a ring over the given node names with virtual points
// per node (0 selects the default). Names must be unique and non-empty.
func NewRing(nodes []string, virtual int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if virtual <= 0 {
		virtual = defaultVirtualNodes
	}
	seen := make(map[string]struct{}, len(nodes))
	r := &Ring{nodes: append([]string(nil), nodes...)}
	sort.Strings(r.nodes)
	for _, node := range r.nodes {
		if node == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if _, dup := seen[node]; dup {
			return nil, fmt.Errorf("cluster: duplicate node name %q", node)
		}
		seen[node] = struct{}{}
		for v := 0; v < virtual; v++ {
			r.points = append(r.points, ringPoint{
				hash: fnv1a32(node + "#" + strconv.Itoa(v)),
				node: node,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (rare) break by name so ownership is deterministic
		// regardless of insertion order.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Owner returns the node owning key: the first ring point at or past
// the key's hash, wrapping to the lowest point.
func (r *Ring) Owner(key string) string {
	h := fnv1a32(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the member names in sorted order.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// fnv1a32 is the same FNV-1a the cloud's store and WAL shards use for
// device routing — one hash family end to end keeps placement reasoning
// simple, though the ring's key space (node#vnode) is its own.
func fnv1a32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
