package cluster

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/wal"
)

// Shipper moves a primary's WAL to its replica: one Tailer per shard
// log reads newly flushed frames, the records merge into LSN order,
// and each is handed to the replica's ShipRecord — the same
// watermark-merge recovery performs offline, run continuously.
//
// Coverage is tracked per shard, never as one global high-water LSN.
// Shard logs flush independently, so a record can become readable
// before a lower-LSN record still in flight on a sibling shard; a
// global max watermark would then claim the lower record was shipped
// when it never was. Because each shard's records are tailed, shipped
// and appended in increasing LSN order, the per-shard marks make the
// coverage question exact: shard i is caught up to target[i] iff
// marks[i] >= target[i].
//
// Safe for concurrent CatchUp calls (they serialize).
type Shipper struct {
	flush   func() error // pushes the primary's buffered frames to disk; nil if unbuffered
	tailers []*wal.Tailer
	ship    func(shard int, lsn uint64, payload []byte) error // dst.ShipRecord (swapped by failure-injection tests)

	mu       sync.Mutex
	detached bool
	marks    []uint64  // per-shard highest LSN delivered to dst
	shipped  uint64    // highest LSN delivered to dst across all shards
	pending  []shipRec // read off the tailers but not yet accepted by dst
}

// shipRec is one record in transit: polled from a primary shard log,
// not yet accepted by the replica.
type shipRec struct {
	shard   int
	lsn     uint64
	payload []byte
}

// NewShipper tails the primary's sharded WAL under primaryDir (the
// durable directory, not the wal/ subdirectory) into dst, resuming
// each shard at dst's own watermark for that shard — the replica's
// logs record exactly what it holds per shard, so a restarted replica
// that took a higher LSN on one shard before a lower one on another
// still re-requests the missing straggler. flush is called before each
// read pass so buffered appends become visible — pass the primary's
// FlushWAL, or nil when the policy flushes on every append.
func NewShipper(primaryDir string, maxRecord int, dst *cloud.Durable, flush func() error) *Shipper {
	marks := dst.ShardWatermarks()
	s := &Shipper{flush: flush, ship: dst.ShipRecord, marks: marks}
	for i, from := range marks {
		dir := filepath.Join(primaryDir, "wal", wal.ShardDirName(i))
		s.tailers = append(s.tailers, wal.NewTailer(dir, maxRecord, from))
		if from > s.shipped {
			s.shipped = from
		}
	}
	return s
}

// CatchUp ships until the replica holds, on every shard, each record
// at or below that shard's target watermark (a primary ShardWatermarks
// reading taken after the operations of interest appended). Waiting on
// the whole vector — not a global max — is what makes ack-after-
// replicate exact: a request's ack waits for its own record even when
// a higher LSN on another shard shipped first.
func (s *Shipper) CatchUp(target []uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(target) != len(s.marks) {
		return fmt.Errorf("cluster: catch-up target names %d shards, shipping %d", len(target), len(s.marks))
	}
	for {
		behind := -1
		for i, want := range target {
			if s.marks[i] < want {
				behind = i
				break
			}
		}
		if behind < 0 {
			return nil
		}
		if s.detached {
			// The primary's disk is gone: whatever was shipped is all
			// there will ever be, and it does not cover the target.
			return fmt.Errorf("cluster: shipper detached with shard %d at LSN %d short of target %d",
				behind, s.marks[behind], target[behind])
		}
		// One pass normally suffices: the target was read after the
		// records of interest appended, so one flush makes them
		// readable. The loop guards the one legal straggler — a record
		// flushed between our flush and read — and turns no-progress
		// into a hard error instead of a spin: an unreachable target
		// means the primary's log lost records its watermark claims (or
		// the caller passed a future vector).
		if s.flush != nil {
			if err := s.flush(); err != nil {
				return fmt.Errorf("cluster: ship flush: %w", err)
			}
		}
		n, err := s.pass()
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("cluster: shipping stalled with shard %d at LSN %d short of target %d",
				behind, s.marks[behind], target[behind])
		}
	}
}

// pass polls every shard tailer for newly visible records, then ships
// the pending buffer in LSN order. Tailer→pending and pending→replica
// are deliberately separate steps: a tailer never re-reads what it
// already delivered, so a record may not be forgotten until the
// replica accepted it — shipping straight out of the Poll callback
// would strand every record collected before a transient failure
// (polled past, never shipped) and stall the replica forever. On error
// the unshipped remainder stays pending for the next pass. Returns how
// many records were delivered to the replica.
func (s *Shipper) pass() (int, error) {
	for shard, tr := range s.tailers {
		if _, err := tr.Poll(func(lsn uint64, payload []byte) error {
			s.pending = append(s.pending, shipRec{shard: shard, lsn: lsn, payload: append([]byte(nil), payload...)})
			return nil
		}); err != nil {
			// Keep what this pass already collected: the tailers are
			// past it, so the pending buffer holds the only copy the
			// shipper will ever see.
			return 0, fmt.Errorf("cluster: tail shard %d: %w", shard, err)
		}
	}
	sort.Slice(s.pending, func(i, j int) bool { return s.pending[i].lsn < s.pending[j].lsn })
	delivered := 0
	for len(s.pending) > 0 {
		r := s.pending[0]
		if err := s.ship(r.shard, r.lsn, r.payload); err != nil {
			return delivered, fmt.Errorf("cluster: ship record %d: %w", r.lsn, err)
		}
		s.pending = s.pending[1:]
		if r.lsn > s.marks[r.shard] {
			s.marks[r.shard] = r.lsn
		}
		if r.lsn > s.shipped {
			s.shipped = r.lsn
		}
		delivered++
	}
	s.pending = nil
	return delivered, nil
}

// Detach stops the shipper permanently — the primary's disk is gone.
// Concurrent CatchUp calls finish first; later ones succeed only if
// their target was already covered.
func (s *Shipper) Detach() {
	s.mu.Lock()
	s.detached = true
	s.mu.Unlock()
}

// Watermark reports the highest LSN shipped to the replica. A max
// across shards, so it may briefly run ahead of lower-LSN records
// still in flight on other shards — coverage questions go through
// ShardMarks.
func (s *Shipper) Watermark() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shipped
}

// ShardMarks returns a copy of the per-shard shipped watermark vector.
func (s *Shipper) ShardMarks() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint64(nil), s.marks...)
}
