package cluster

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/wal"
)

// Shipper moves a primary's WAL to its replica: one Tailer per shard
// log reads newly flushed frames, the records merge into global LSN
// order, and each is handed to the replica's ShipRecord — the same
// watermark-merge recovery performs offline, run continuously. Safe for
// concurrent CatchUp calls (they serialize).
type Shipper struct {
	dst     *cloud.Durable
	flush   func() error // pushes the primary's buffered frames to disk; nil if unbuffered
	tailers []*wal.Tailer

	mu       sync.Mutex
	detached bool
	shipped  uint64 // highest LSN delivered to dst
}

// NewShipper tails the primary's sharded WAL under primaryDir (the
// durable directory, not the wal/ subdirectory) into dst, resuming at
// dst's replication watermark. flush is called before each read pass so
// buffered appends become visible — pass the primary's FlushWAL, or nil
// when the policy flushes on every append.
func NewShipper(primaryDir string, shards int, maxRecord int, dst *cloud.Durable, flush func() error) *Shipper {
	s := &Shipper{dst: dst, flush: flush}
	from := dst.AppliedOps()
	s.shipped = from
	for i := 0; i < shards; i++ {
		dir := filepath.Join(primaryDir, "wal", wal.ShardDirName(i))
		s.tailers = append(s.tailers, wal.NewTailer(dir, maxRecord, from))
	}
	return s
}

// CatchUp ships until the replica holds every record up to target (a
// primary AppliedOps reading). Returns immediately if already there or
// detached — a detached shipper's primary is gone, so whatever was
// shipped is all there will ever be.
func (s *Shipper) CatchUp(target uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.detached || s.shipped >= target {
		return nil
	}
	// One pass normally suffices: the primary acked target before we
	// were called, so its frames are on disk after one flush. The loop
	// guards the one legal straggler — a record acked between our flush
	// and read — and turns no-progress into a hard error instead of a
	// spin: an unreachable target means the primary's log lost records
	// the watermark claims (or the caller passed a future LSN).
	for s.shipped < target {
		before := s.shipped
		if s.flush != nil {
			if err := s.flush(); err != nil {
				return fmt.Errorf("cluster: ship flush: %w", err)
			}
		}
		n, err := s.pass()
		if err != nil {
			return err
		}
		if n == 0 && s.shipped == before {
			return fmt.Errorf("cluster: shipping stalled at LSN %d short of target %d", s.shipped, target)
		}
	}
	return nil
}

// pass polls every shard tailer once, merges the new records by LSN and
// ships them. Returns how many records moved.
func (s *Shipper) pass() (int, error) {
	type rec struct {
		shard   int
		lsn     uint64
		payload []byte
	}
	var recs []rec
	for shard, tr := range s.tailers {
		if _, err := tr.Poll(func(lsn uint64, payload []byte) error {
			recs = append(recs, rec{shard: shard, lsn: lsn, payload: append([]byte(nil), payload...)})
			return nil
		}); err != nil {
			return 0, fmt.Errorf("cluster: tail shard %d: %w", shard, err)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].lsn < recs[j].lsn })
	for _, r := range recs {
		if err := s.dst.ShipRecord(r.shard, r.lsn, r.payload); err != nil {
			return 0, fmt.Errorf("cluster: ship record %d: %w", r.lsn, err)
		}
		if r.lsn > s.shipped {
			s.shipped = r.lsn
		}
	}
	return len(recs), nil
}

// Detach stops the shipper permanently — the primary's disk is gone.
// Concurrent CatchUp calls finish first; later ones return immediately.
func (s *Shipper) Detach() {
	s.mu.Lock()
	s.detached = true
	s.mu.Unlock()
}

// Watermark reports the highest LSN shipped to the replica.
func (s *Shipper) Watermark() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shipped
}
