package report

import (
	"fmt"
	"io"
	"strings"

	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/modelcheck"
)

// WriteVerification renders the model checker's verdicts for one design.
func WriteVerification(w io.Writer, design core.DesignSpec, results []modelcheck.Result) error {
	tw := newTableWriter(w, "Property", "Verdict", "Counterexample / coverage")
	for _, r := range results {
		if r.Holds {
			tw.row(r.Property.String(), "HOLDS",
				fmt.Sprintf("all %d reachable states", r.StatesExplored))
			continue
		}
		moves := make([]string, 0, len(r.Counterexample))
		for _, m := range r.Counterexample {
			moves = append(moves, string(m))
		}
		tw.row(r.Property.String(), "VIOLATED", strings.Join(moves, " , "))
	}
	return tw.flush(fmt.Sprintf("Formal verification (exhaustive state-space search): %s", design.Name))
}
