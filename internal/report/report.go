// Package report renders the paper's tables from live experiment output:
// the Table I notation reference, the derived Table II attack taxonomy,
// the measured Table III vendor matrix with paper-vs-measured diffing, and
// the device-ID search-space analysis behind the Section I enumeration
// claims.
package report

import (
	"fmt"
	"io"
	"strings"

	"github.com/iotbind/iotbind/internal/analysis"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/devid"
	"github.com/iotbind/iotbind/internal/modelcheck"
	"github.com/iotbind/iotbind/internal/testbed"
	"github.com/iotbind/iotbind/internal/vendors"
)

// WriteNotationTable renders Table I.
func WriteNotationTable(w io.Writer) error {
	tw := newTableWriter(w, "Notation", "Meaning")
	for _, row := range core.NotationTable() {
		tw.row(string(row.Notation), row.Description)
	}
	return tw.flush("Table I: Notations")
}

// WriteStateMachine renders the Figure 2 state machine: the four states
// and every valid transition, with the six numbered edges marked.
func WriteStateMachine(w io.Writer) error {
	numbered := make(map[core.Transition]int, 6)
	for i, e := range core.Figure2Edges() {
		numbered[e] = i + 1
	}
	tw := newTableWriter(w, "From", "Event", "To", "Figure 2 edge")
	for _, tr := range core.TransitionTable() {
		label := ""
		if n, ok := numbered[tr]; ok {
			label = fmt.Sprintf("#%d", n)
		}
		tw.row(tr.From.String(), tr.Event.String(), tr.To.String(), label)
	}
	return tw.flush("Figure 2: Device-shadow state machine")
}

// WriteTaxonomy renders the derived Table II.
func WriteTaxonomy(w io.Writer) error {
	rows, err := analysis.DeriveTaxonomy()
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	tw := newTableWriter(w, "Attack", "Forged message types", "Targeted states", "End state", "Consequence")
	for _, row := range rows {
		targets := make([]string, 0, len(row.TargetStates))
		for _, s := range row.TargetStates {
			targets = append(targets, s.String())
		}
		tw.row(row.Variant.String(), row.ForgedMessage, strings.Join(targets, ", "),
			row.EndState.String(), row.Consequence)
	}
	return tw.flush("Table II: The taxonomy of attacks in remote binding (derived)")
}

// VendorRowCells renders one vendor's Table III cells from a measured row.
func VendorRowCells(row vendors.PaperRow) (a1, a2, a3, a4 string) {
	return row.A1.String(), row.A2.String(), variantCell(row.A3), variantCell(row.A4)
}

func variantCell(succeeded []core.AttackVariant) string {
	if len(succeeded) == 0 {
		return "✗"
	}
	parts := make([]string, 0, len(succeeded))
	for _, v := range succeeded {
		parts = append(parts, v.String())
	}
	return strings.Join(parts, " & ")
}

// WriteTable3 renders the measured Table III and appends a
// paper-vs-measured verdict per row.
func WriteTable3(w io.Writer, results []testbed.VendorResult) error {
	tw := newTableWriter(w, "#", "Vendor", "Device Type", "Status", "Bind", "Unbind", "A1", "A2", "A3", "A4", "vs paper")
	matches := 0
	for _, vr := range results {
		p := vr.Profile
		a1, a2, a3, a4 := VendorRowCells(vr.Row)
		verdict := "MATCH"
		if testbed.MatchesPaper(vr.Row, p.Paper) {
			matches++
		} else {
			verdict = "DIFFERS"
		}
		tw.row(
			fmt.Sprintf("%d", p.Number), p.Vendor, p.DeviceType,
			p.Design.DeviceAuth.String(), bindCell(p.Design), p.Design.UnbindNotation(),
			a1, a2, a3, a4, verdict,
		)
	}
	title := fmt.Sprintf("Table III: Evaluation results on experimental devices (measured; %d/%d rows match the paper)",
		matches, len(results))
	return tw.flush(title)
}

func bindCell(d core.DesignSpec) string {
	switch d.Binding {
	case core.BindACLApp:
		return "Sent by the app"
	case core.BindACLDevice:
		return "Sent by the device"
	case core.BindCapability:
		return "Capability token"
	default:
		return "?"
	}
}

// WriteFindings renders the analyzer's per-variant predictions for one
// design, with reasons.
func WriteFindings(w io.Writer, design core.DesignSpec, findings []analysis.Finding) error {
	tw := newTableWriter(w, "Attack", "Outcome", "Reason")
	for _, f := range findings {
		tw.row(f.Variant.String(), f.Outcome.String(), f.Reason)
	}
	return tw.flush(fmt.Sprintf("Attack-surface analysis: %s", design.Name))
}

// WriteDelegation renders the A6 delegation sweep for one design: the
// analyzer's rule-based prediction next to the exhaustive delegation
// sub-model's verdict per attack row, with the analyzer's reason.
func WriteDelegation(w io.Writer, design core.DesignSpec, findings []analysis.DelegationFinding, verdicts []modelcheck.DelegationResult) error {
	tw := newTableWriter(w, "Attack", "Predicted", "Model", "States", "Reason")
	for i, f := range findings {
		model, states := "-", "-"
		if i < len(verdicts) {
			model = outcomeWord(verdicts[i].Succeeds)
			states = fmt.Sprintf("%d", verdicts[i].StatesExplored)
		}
		tw.row(f.Attack.String(), outcomeWord(f.Outcome.Succeeded()), model, states, f.Reason)
	}
	return tw.flush(fmt.Sprintf("Delegation (A6) sweep: %s", design.Name))
}

func outcomeWord(succeeds bool) string {
	if succeeds {
		return "succeeds"
	}
	return "blocked"
}

// WriteSearchSpace renders the device-ID enumeration analysis for a set of
// schemes at a given forged-request rate.
func WriteSearchSpace(w io.Writer, estimates []devid.EnumerationEstimate) error {
	tw := newTableWriter(w, "Scheme", "Search space", "Entropy (bits)", "Rate (req/s)", "Full sweep", "Expected hit", "Within an hour")
	for _, est := range estimates {
		within := "no"
		if est.WithinHour {
			within = "yes"
		}
		tw.row(
			est.Scheme.String(),
			est.SearchSpace.String(),
			fmt.Sprintf("%.1f", est.EntropyBits),
			fmt.Sprintf("%.0f", est.RatePerSecond),
			devid.HumanDuration(est.FullSweep),
			devid.HumanDuration(est.Expected),
			within,
		)
	}
	return tw.flush("Device-ID search spaces and enumeration times (Sections I, V-C)")
}

// tableWriter accumulates rows and renders an aligned ASCII table.
type tableWriter struct {
	w       io.Writer
	headers []string
	rows    [][]string
	err     error
}

func newTableWriter(w io.Writer, headers ...string) *tableWriter {
	return &tableWriter{w: w, headers: headers}
}

func (t *tableWriter) row(cells ...string) {
	if len(cells) != len(t.headers) {
		t.err = fmt.Errorf("report: row has %d cells, want %d", len(cells), len(t.headers))
		return
	}
	t.rows = append(t.rows, cells)
}

func (t *tableWriter) flush(title string) error {
	if t.err != nil {
		return t.err
	}
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = displayWidth(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if w := displayWidth(cell); w > widths[i] {
				widths[i] = w
			}
		}
	}

	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-displayWidth(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	b.WriteString("\n")
	_, err := io.WriteString(t.w, b.String())
	return err
}

// displayWidth approximates terminal width: every rune counts one column
// (the table marks ✓/✗ are single width).
func displayWidth(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}
