package report

import (
	"fmt"
	"io"
	"strings"

	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/discover"
)

// WriteDiscovery renders the automatic attack-discovery results for one
// design.
func WriteDiscovery(w io.Writer, design core.DesignSpec, attacks []discover.Attack) error {
	if len(attacks) == 0 {
		_, err := fmt.Fprintf(w, "Automatic attack discovery: %s\nno attack sequence achieves any adversarial goal\n\n", design.Name)
		return err
	}
	tw := newTableWriter(w, "Scenario", "Goal", "Minimal sequence")
	for _, a := range attacks {
		parts := make([]string, 0, len(a.Sequence))
		for _, act := range a.Sequence {
			parts = append(parts, act.String())
		}
		tw.row(a.Scenario.String(), a.Goal.String(), strings.Join(parts, " , "))
	}
	return tw.flush(fmt.Sprintf("Automatic attack discovery: %s", design.Name))
}

// WriteStats renders a cloud's activity counters.
func WriteStats(w io.Writer, name string, stats cloud.Stats) error {
	tw := newTableWriter(w, "Counter", "Value")
	tw.row("users registered", fmt.Sprintf("%d", stats.UsersRegistered))
	tw.row("logins ok / failed", fmt.Sprintf("%d / %d", stats.Logins, stats.LoginFailures))
	tw.row("device tokens issued", fmt.Sprintf("%d", stats.DeviceTokensIssued))
	tw.row("bind tokens issued", fmt.Sprintf("%d", stats.BindTokensIssued))
	tw.row("status ok / rejected", fmt.Sprintf("%d / %d", stats.StatusAccepted, stats.StatusRejected))
	tw.row("binds ok / rejected", fmt.Sprintf("%d / %d", stats.BindsAccepted, stats.BindsRejected))
	tw.row("bindings replaced", fmt.Sprintf("%d", stats.BindingsReplaced))
	tw.row("unbinds ok / rejected", fmt.Sprintf("%d / %d", stats.UnbindsAccepted, stats.UnbindsRejected))
	tw.row("controls ok / rejected", fmt.Sprintf("%d / %d", stats.ControlsQueued, stats.ControlsRejected))
	return tw.flush(fmt.Sprintf("Cloud activity: %s", name))
}
