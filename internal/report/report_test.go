package report

import (
	"strings"
	"testing"

	"github.com/iotbind/iotbind/internal/analysis"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/devid"
	"github.com/iotbind/iotbind/internal/testbed"
	"github.com/iotbind/iotbind/internal/vendors"
)

func TestWriteNotationTable(t *testing.T) {
	var b strings.Builder
	if err := WriteNotationTable(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table I", "DevId", "DevToken", "BindToken", "UserToken", "UserPw"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestWriteStateMachine(t *testing.T) {
	var b strings.Builder
	if err := WriteStateMachine(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 2", "initial", "online", "control", "bound", "#1", "#6"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestWriteTaxonomy(t *testing.T) {
	var b strings.Builder
	if err := WriteTaxonomy(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table II", "A1", "A3-4", "A4-3", "Bind : (DevId, UserToken)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestWriteTable3(t *testing.T) {
	// One real evaluation (cheap) plus a synthetic mismatch to exercise
	// the verdict column.
	p, ok := vendors.ByVendor("D-LINK")
	if !ok {
		t.Fatal("no D-LINK profile")
	}
	vr, err := testbed.EvaluateVendor(p)
	if err != nil {
		t.Fatal(err)
	}
	mismatched := vr
	mismatched.Row.A1 = core.OutcomeFailed // the paper says ✓

	var b strings.Builder
	if err := WriteTable3(&b, []testbed.VendorResult{vr, mismatched}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "MATCH") || !strings.Contains(out, "DIFFERS") {
		t.Errorf("verdict column wrong:\n%s", out)
	}
	if !strings.Contains(out, "1/2 rows match") {
		t.Errorf("match summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "D-LINK") || !strings.Contains(out, "Sent by the app") {
		t.Errorf("design columns missing:\n%s", out)
	}
}

func TestWriteFindings(t *testing.T) {
	p := vendors.WorstCase()
	var b strings.Builder
	if err := WriteFindings(&b, p.Design, analysis.PredictAll(p.Design)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, p.Design.Name) || !strings.Contains(out, "A4-3") {
		t.Errorf("findings output incomplete:\n%s", out)
	}
}

func TestWriteSearchSpace(t *testing.T) {
	short, err := devid.NewShortDigitsGenerator(6)
	if err != nil {
		t.Fatal(err)
	}
	est, err := devid.Estimate(short, 3000)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteSearchSpace(&b, []devid.EnumerationEstimate{est}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "short-digits") || !strings.Contains(out, "yes") {
		t.Errorf("search-space output incomplete:\n%s", out)
	}
}

func TestVendorRowCells(t *testing.T) {
	row := vendors.PaperRow{
		A1: core.OutcomeUnconfirmed,
		A2: core.OutcomeSucceeded,
		A3: []core.AttackVariant{core.VariantA3x1, core.VariantA3x4},
	}
	a1, a2, a3, a4 := VendorRowCells(row)
	if a1 != "O" || a2 != "✓" || a3 != "A3-1 & A3-4" || a4 != "✗" {
		t.Errorf("cells = %q %q %q %q", a1, a2, a3, a4)
	}
}

func TestTableWriterRejectsRaggedRows(t *testing.T) {
	var b strings.Builder
	tw := newTableWriter(&b, "a", "b")
	tw.row("only-one")
	if err := tw.flush("t"); err == nil {
		t.Error("ragged row accepted")
	}
}
