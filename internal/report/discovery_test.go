package report

import (
	"strings"
	"testing"

	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/discover"
	"github.com/iotbind/iotbind/internal/modelcheck"
	"github.com/iotbind/iotbind/internal/vendors"
)

func TestWriteDiscovery(t *testing.T) {
	p := vendors.WorstCase()
	attacks := []discover.Attack{
		{
			Scenario: discover.ScenarioSteadyControl,
			Goal:     discover.GoalHijack,
			Sequence: []discover.Action{discover.ActForgeUnbindDevID, discover.ActForgeBind},
		},
	}
	var b strings.Builder
	if err := WriteDiscovery(&b, p.Design, attacks); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"steady-control", "hijack-device", "forge-unbind-devid , forge-bind"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDiscoveryEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteDiscovery(&b, vendors.SecureReference().Design, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no attack sequence") {
		t.Errorf("empty discovery output = %q", b.String())
	}
}

func TestWriteVerification(t *testing.T) {
	p, ok := vendors.ByVendor("TP-LINK")
	if !ok {
		t.Fatal("no TP-LINK profile")
	}
	results, err := modelcheck.Check(p.Design)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteVerification(&b, p.Design, results); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Formal verification", "VIOLATED", "HOLDS", "forge-unbind-devid , forge-bind"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteStats(t *testing.T) {
	stats := cloud.Stats{
		UsersRegistered: 2,
		Logins:          3,
		LoginFailures:   1,
		StatusAccepted:  10,
		BindsAccepted:   1,
	}
	var b strings.Builder
	if err := WriteStats(&b, "demo-cloud", stats); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"demo-cloud", "3 / 1", "users registered", "bindings replaced"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
