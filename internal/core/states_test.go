package core

import (
	"testing"
	"testing/quick"
)

func TestStateOf(t *testing.T) {
	tests := []struct {
		online, bound bool
		want          ShadowState
	}{
		{false, false, StateInitial},
		{true, false, StateOnline},
		{true, true, StateControl},
		{false, true, StateBound},
	}
	for _, tt := range tests {
		if got := StateOf(tt.online, tt.bound); got != tt.want {
			t.Errorf("StateOf(%v, %v) = %v, want %v", tt.online, tt.bound, got, tt.want)
		}
	}
}

func TestStatePredicates(t *testing.T) {
	tests := []struct {
		state  ShadowState
		online bool
		bound  bool
	}{
		{StateInitial, false, false},
		{StateOnline, true, false},
		{StateControl, true, true},
		{StateBound, false, true},
	}
	for _, tt := range tests {
		t.Run(tt.state.String(), func(t *testing.T) {
			if got := tt.state.Online(); got != tt.online {
				t.Errorf("Online() = %v, want %v", got, tt.online)
			}
			if got := tt.state.BoundToUser(); got != tt.bound {
				t.Errorf("BoundToUser() = %v, want %v", got, tt.bound)
			}
			if !tt.state.Valid() {
				t.Errorf("Valid() = false for defined state %v", tt.state)
			}
		})
	}
}

func TestStateOfRoundTrip(t *testing.T) {
	// StateOf is the inverse of the (Online, BoundToUser) projection.
	f := func(online, bound bool) bool {
		s := StateOf(online, bound)
		return s.Online() == online && s.BoundToUser() == bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidStates(t *testing.T) {
	for _, s := range []ShadowState{0, 5, -1, 100} {
		if s.Valid() {
			t.Errorf("Valid() = true for undefined state %d", int(s))
		}
	}
}

func TestStateStrings(t *testing.T) {
	want := map[ShadowState]string{
		StateInitial: "initial",
		StateOnline:  "online",
		StateControl: "control",
		StateBound:   "bound",
	}
	for s, name := range want {
		if got := s.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", int(s), got, name)
		}
	}
	if got := ShadowState(42).String(); got != "ShadowState(42)" {
		t.Errorf("undefined state String() = %q", got)
	}
}

func TestAllStatesCoversEveryState(t *testing.T) {
	states := AllStates()
	if len(states) != 4 {
		t.Fatalf("AllStates() has %d entries, want 4", len(states))
	}
	seen := make(map[ShadowState]bool, len(states))
	for _, s := range states {
		if !s.Valid() {
			t.Errorf("AllStates() contains invalid state %v", s)
		}
		if seen[s] {
			t.Errorf("AllStates() contains duplicate state %v", s)
		}
		seen[s] = true
	}
}
