// Package core defines the device-shadow state machine and the
// design-description vocabulary for IoT remote-binding solutions, following
// the model of Chen et al., "Your IoTs Are (Not) Mine: On the Remote Binding
// Between IoT Devices and Users" (DSN 2019).
//
// The cloud maintains, for every device, a "device shadow" that tracks two
// orthogonal booleans: whether the device is online (authenticated and
// heartbeating) and whether it is bound to a user. The four combinations are
// the four states of Figure 2; the three primitive message types (Status,
// Bind, Unbind) drive the transitions between them.
package core

import "fmt"

// ShadowState is one of the four states of a device shadow (Figure 2).
type ShadowState int

// The four device-shadow states. Values start at one so the zero value is
// detectably invalid.
const (
	// StateInitial is offline and unbound: the factory/default state,
	// and the state after a bound device is reset while offline.
	StateInitial ShadowState = iota + 1
	// StateOnline is online and unbound: the device has authenticated to
	// the cloud but no user has bound it yet.
	StateOnline
	// StateControl is online and bound: the only state in which the bound
	// user can remotely control the device.
	StateControl
	// StateBound is offline and bound: the binding persists in the cloud
	// while the device is powered off or disconnected, or was created
	// before the device ever came online.
	StateBound
)

// AllStates lists every valid shadow state in declaration order.
func AllStates() []ShadowState {
	return []ShadowState{StateInitial, StateOnline, StateControl, StateBound}
}

// Online reports whether the device is authenticated and heartbeating in
// this state.
func (s ShadowState) Online() bool {
	return s == StateOnline || s == StateControl
}

// BoundToUser reports whether a binding exists in this state.
func (s ShadowState) BoundToUser() bool {
	return s == StateControl || s == StateBound
}

// Valid reports whether s is one of the four defined states.
func (s ShadowState) Valid() bool {
	return s >= StateInitial && s <= StateBound
}

// String implements fmt.Stringer using the paper's state names.
func (s ShadowState) String() string {
	switch s {
	case StateInitial:
		return "initial"
	case StateOnline:
		return "online"
	case StateControl:
		return "control"
	case StateBound:
		return "bound"
	default:
		return fmt.Sprintf("ShadowState(%d)", int(s))
	}
}

// StateOf returns the shadow state encoding the two status booleans the
// cloud tracks for a device: online (device authenticated recently) and
// bound (a binding exists).
func StateOf(online, bound bool) ShadowState {
	switch {
	case online && bound:
		return StateControl
	case online && !bound:
		return StateOnline
	case !online && bound:
		return StateBound
	default:
		return StateInitial
	}
}
