package core

import (
	"errors"
	"fmt"
	"strings"
)

// DeviceAuthMode is the device-authentication design of a remote-binding
// solution (Figure 3 plus the public-key variant discussed in Section IV-A).
type DeviceAuthMode int

// Device-authentication modes.
const (
	// AuthDevToken (Figure 3, Type 1): the app requests a random device
	// token from the cloud and delivers it to the device during local
	// configuration; the device authenticates with that token.
	AuthDevToken DeviceAuthMode = iota + 1
	// AuthDevID (Figure 3, Type 2): the device authenticates with a static
	// identifier such as a MAC address or serial number. Anyone who learns
	// the identifier can impersonate the device.
	AuthDevID
	// AuthPublicKey: a per-device key pair provisioned at manufacturing
	// (AWS IoT / IBM Watson / Google Cloud IoT style). Rare in commercial
	// products because it needs trusted hardware.
	AuthPublicKey
	// AuthUnknown marks products whose device authentication the paper
	// could not confirm because the firmware resisted analysis. Emulated
	// vendors with AuthUnknown still need a concrete internal mode; see
	// DesignSpec.EffectiveAuth.
	AuthUnknown
)

// String implements fmt.Stringer using the paper's notation.
func (m DeviceAuthMode) String() string {
	switch m {
	case AuthDevToken:
		return "DevToken"
	case AuthDevID:
		return "DevId"
	case AuthPublicKey:
		return "PublicKey"
	case AuthUnknown:
		return "O"
	default:
		return fmt.Sprintf("DeviceAuthMode(%d)", int(m))
	}
}

// BindMechanism is the binding-creation design (Figure 4).
type BindMechanism int

// Binding-creation mechanisms.
const (
	// BindACLApp (Figure 4a): the app sends Bind:(DevId, UserToken); the
	// cloud records the pair in an access-control list.
	BindACLApp BindMechanism = iota + 1
	// BindACLDevice (Figure 4b): the user's credential (UserId, UserPw) is
	// delivered to the device during local configuration and the device
	// sends the binding message.
	BindACLDevice
	// BindCapability (Figure 4c): the cloud issues a random BindToken to
	// the user, who delivers it to the device over the local network; the
	// device submits the token back, proving local ownership.
	BindCapability
)

// String implements fmt.Stringer.
func (m BindMechanism) String() string {
	switch m {
	case BindACLApp:
		return "ACL (sent by the app)"
	case BindACLDevice:
		return "ACL (sent by the device)"
	case BindCapability:
		return "Capability (BindToken)"
	default:
		return fmt.Sprintf("BindMechanism(%d)", int(m))
	}
}

// UnbindForm is one accepted shape of unbinding request (Section IV-C).
type UnbindForm int

// Unbinding request forms.
const (
	// UnbindDevIDUserToken (Type 1): Unbind:(DevId, UserToken).
	UnbindDevIDUserToken UnbindForm = iota + 1
	// UnbindDevIDAlone (Type 2): Unbind:DevId, typically sent by the
	// device itself during a physical reset.
	UnbindDevIDAlone
	// UnbindReplaceByBind (Type 3): the design has no unbind operation at
	// all; a new binding message replaces the previous binding.
	UnbindReplaceByBind
)

// String implements fmt.Stringer using the paper's notation.
func (f UnbindForm) String() string {
	switch f {
	case UnbindDevIDUserToken:
		return "(DevId, UserToken)"
	case UnbindDevIDAlone:
		return "DevId"
	case UnbindReplaceByBind:
		return "N.A."
	default:
		return fmt.Sprintf("UnbindForm(%d)", int(f))
	}
}

// DesignSpec describes one remote-binding solution: the identifier and
// message designs of Section IV plus the cloud-side policy checks whose
// presence or absence decides the outcome of every attack in Section V.
//
// The zero value is not a valid spec; use Validate before relying on one.
type DesignSpec struct {
	// Name identifies the solution (vendor or reference design name).
	Name string

	// DeviceAuth is the device-authentication mode the product uses, or
	// AuthUnknown when the paper could not confirm it.
	DeviceAuth DeviceAuthMode

	// AssumedAuth supplies the concrete authentication mode the emulation
	// uses when DeviceAuth is AuthUnknown. Ignored otherwise.
	AssumedAuth DeviceAuthMode

	// Binding is the binding-creation mechanism.
	Binding BindMechanism

	// UnbindForms lists every unbinding request shape the cloud accepts.
	// Empty together with ReplaceOnBind means Type 3 (no unbind support).
	UnbindForms []UnbindForm

	// CheckBoundUserOnBind makes the cloud reject a Bind for a device that
	// is already bound to a *different* user. When false the new binding
	// silently replaces the old one (or coexists incorrectly).
	CheckBoundUserOnBind bool

	// CheckBoundUserOnUnbind makes the cloud verify that the UserToken in
	// a Type 1 unbind belongs to the currently bound user. Its absence is
	// vulnerability A3-2.
	CheckBoundUserOnUnbind bool

	// ReplaceOnBind makes a newly accepted Bind replace any existing
	// binding instead of being rejected. This is the Type 3 unbind design
	// and also models clouds that blindly overwrite (device #9).
	ReplaceOnBind bool

	// PostBindingToken issues a fresh random token to both the user and
	// the device when a binding is created; subsequent control-plane and
	// device messages must carry it (Section IV-B, the KONKE defence).
	// It blocks control-plane forgery after a successful bind forgery but
	// not the bind forgery itself.
	PostBindingToken bool

	// SourceIPCheck makes the cloud compare the source IP address of the
	// device registration triggered by a physical button press with the
	// source IP of the user's bind request, accepting the bind only when
	// they match (the Philips Hue defence, Section VI-B).
	SourceIPCheck bool

	// BindButtonWindow requires a physical button press on the device to
	// open a short binding window (Philips Hue).
	BindButtonWindow bool

	// OnlineBeforeBind reports whether the device connects and
	// authenticates to the cloud before any binding exists, exposing the
	// online-unbound setup window that attack A4-2 exploits (device #6).
	OnlineBeforeBind bool

	// SessionTiedBinding ties the binding's validity to the device's
	// authenticated session: a status message from a "new" device instance
	// replaces the session and drops the binding (device #8; enables A3-4
	// and redirects forged status away from data injection).
	SessionTiedBinding bool

	// DataRequiresSession requires data-bearing device messages to prove a
	// handshake that only the real firmware (holding the factory secret)
	// can complete: the register response carries a session nonce and
	// readings are accepted only with an HMAC of that nonce under the
	// factory secret. It models products whose boot/registration messages
	// are forgeable from static firmware analysis but whose in-session
	// data traffic is not (device #8), so status forgery can unbind (A3-4)
	// but cannot inject or steal data (A1).
	DataRequiresSession bool

	// DelegationScopeAttenuation makes the cloud enforce monotone
	// attenuation on re-delegation: a derived grant may carry only a
	// subset of its grantor's scopes, a strictly smaller re-delegation
	// depth, and no longer an expiry. Its absence is vulnerability A6-2
	// (re-delegation privilege escalation): a read-only guest with the
	// share scope can mint a control grant for an accomplice.
	DelegationScopeAttenuation bool

	// DelegationCascadeRevoke makes revoking a grant atomically sever
	// every grant derived from it. Its absence is vulnerability A6-1
	// (evicted-guest residual control): a guest who re-delegated to a
	// second account they control keeps controlling the device through
	// that surviving derived grant after their own eviction.
	DelegationCascadeRevoke bool

	// DelegationCheckAtUse makes the cloud re-verify the whole grant
	// chain in the delegation lattice at every use of a delegation
	// token, under the device shadow's lock — so a control attempt
	// racing a revocation loses deterministically. Its absence is
	// vulnerability A6-3 (revocation-race window): a minted delegation
	// token keeps its authority until its own expiry, outliving the
	// revocation of the grant it came from.
	DelegationCheckAtUse bool

	// ResetUnbindsOnSetup models products whose normal setup flow resets
	// the device, emitting an Unbind:DevId that clears any pre-existing
	// (attacker-planted) binding, so binding denial-of-service self-heals
	// (device #8).
	ResetUnbindsOnSetup bool

	// FirmwareOpaque records that the paper could not forge device
	// messages for this product (no firmware image or analysis failed);
	// device-message attacks are reported as unconfirmed ("O").
	FirmwareOpaque bool
}

// EffectiveAuth returns the concrete device-authentication mode the
// emulation should implement: DeviceAuth itself, or AssumedAuth when the
// paper-reported mode is unknown.
func (d DesignSpec) EffectiveAuth() DeviceAuthMode {
	if d.DeviceAuth == AuthUnknown {
		return d.AssumedAuth
	}
	return d.DeviceAuth
}

// SupportsUnbind reports whether the cloud accepts the given unbind form.
func (d DesignSpec) SupportsUnbind(f UnbindForm) bool {
	for _, have := range d.UnbindForms {
		if have == f {
			return true
		}
	}
	return false
}

// UnbindNotation renders the unbind column of Table III for this design.
func (d DesignSpec) UnbindNotation() string {
	if len(d.UnbindForms) == 0 {
		return "N.A."
	}
	parts := make([]string, 0, len(d.UnbindForms))
	for _, f := range d.UnbindForms {
		parts = append(parts, f.String())
	}
	return strings.Join(parts, " & ")
}

// Validation errors returned by DesignSpec.Validate.
var (
	ErrNoName          = errors.New("design: missing name")
	ErrBadAuthMode     = errors.New("design: invalid device authentication mode")
	ErrBadAssumedAuth  = errors.New("design: AuthUnknown requires a concrete AssumedAuth")
	ErrBadBinding      = errors.New("design: invalid binding mechanism")
	ErrBadUnbindForm   = errors.New("design: invalid unbind form")
	ErrReplaceConflict = errors.New("design: UnbindReplaceByBind form requires ReplaceOnBind")
	ErrPostBindingMech = errors.New("design: PostBindingToken requires app-initiated ACL binding")
)

// Validate checks internal consistency of the spec.
func (d DesignSpec) Validate() error {
	if d.Name == "" {
		return ErrNoName
	}
	switch d.DeviceAuth {
	case AuthDevToken, AuthDevID, AuthPublicKey:
	case AuthUnknown:
		switch d.AssumedAuth {
		case AuthDevToken, AuthDevID, AuthPublicKey:
		default:
			return fmt.Errorf("%w (got %v)", ErrBadAssumedAuth, d.AssumedAuth)
		}
	default:
		return fmt.Errorf("%w (got %v)", ErrBadAuthMode, d.DeviceAuth)
	}
	switch d.Binding {
	case BindACLApp, BindACLDevice, BindCapability:
	default:
		return fmt.Errorf("%w (got %v)", ErrBadBinding, d.Binding)
	}
	if d.PostBindingToken && d.Binding != BindACLApp {
		// The post-binding token is returned to the binder and must also
		// reach the user's app for control; the designs the paper
		// observed pair it with app-initiated binding.
		return ErrPostBindingMech
	}
	for _, f := range d.UnbindForms {
		switch f {
		case UnbindDevIDUserToken, UnbindDevIDAlone:
		case UnbindReplaceByBind:
			if !d.ReplaceOnBind {
				return ErrReplaceConflict
			}
		default:
			return fmt.Errorf("%w (got %v)", ErrBadUnbindForm, f)
		}
	}
	return nil
}
