package core

import "testing"

// TestTable2Vocabulary checks that the attack-variant metadata reproduces
// the columns of Table II.
func TestTable2Vocabulary(t *testing.T) {
	tests := []struct {
		variant AttackVariant
		class   AttackClass
		label   string
		targets []ShadowState
		end     ShadowState
	}{
		{VariantA1, A1DataInjectionStealing, "A1", []ShadowState{StateControl, StateBound}, StateControl},
		{VariantA2, A2BindingDoS, "A2", []ShadowState{StateInitial}, StateBound},
		{VariantA3x1, A3DeviceUnbinding, "A3-1", []ShadowState{StateControl}, StateOnline},
		{VariantA3x2, A3DeviceUnbinding, "A3-2", []ShadowState{StateControl}, StateOnline},
		{VariantA3x3, A3DeviceUnbinding, "A3-3", []ShadowState{StateControl}, StateOnline},
		{VariantA3x4, A3DeviceUnbinding, "A3-4", []ShadowState{StateControl}, StateOnline},
		{VariantA4x1, A4DeviceHijacking, "A4-1", []ShadowState{StateControl}, StateControl},
		{VariantA4x2, A4DeviceHijacking, "A4-2", []ShadowState{StateOnline}, StateControl},
		{VariantA4x3, A4DeviceHijacking, "A4-3", []ShadowState{StateControl}, StateControl},
	}
	for _, tt := range tests {
		t.Run(tt.label, func(t *testing.T) {
			if got := tt.variant.Class(); got != tt.class {
				t.Errorf("Class() = %v, want %v", got, tt.class)
			}
			if got := tt.variant.String(); got != tt.label {
				t.Errorf("String() = %q, want %q", got, tt.label)
			}
			targets := tt.variant.TargetStates()
			if len(targets) != len(tt.targets) {
				t.Fatalf("TargetStates() = %v, want %v", targets, tt.targets)
			}
			for i := range targets {
				if targets[i] != tt.targets[i] {
					t.Errorf("TargetStates()[%d] = %v, want %v", i, targets[i], tt.targets[i])
				}
			}
			if got := tt.variant.EndState(); got != tt.end {
				t.Errorf("EndState() = %v, want %v", got, tt.end)
			}
			if tt.variant.ForgedMessage() == "" {
				t.Error("ForgedMessage() is empty")
			}
		})
	}
}

func TestAllAttackVariantsCoverAllClasses(t *testing.T) {
	byClass := make(map[AttackClass]int)
	for _, v := range AllAttackVariants() {
		byClass[v.Class()]++
	}
	want := map[AttackClass]int{
		A1DataInjectionStealing: 1,
		A2BindingDoS:            1,
		A3DeviceUnbinding:       4,
		A4DeviceHijacking:       3,
	}
	for class, n := range want {
		if byClass[class] != n {
			t.Errorf("class %v has %d variants, want %d", class, byClass[class], n)
		}
	}
}

func TestAttackClassDescriptions(t *testing.T) {
	for _, c := range AllAttackClasses() {
		if c.Description() == "" {
			t.Errorf("class %v has empty description", c)
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	tests := []struct {
		outcome Outcome
		want    string
	}{
		{OutcomeFailed, "✗"},
		{OutcomeSucceeded, "✓"},
		{OutcomeUnconfirmed, "O"},
		{OutcomeNotApplicable, "N.A."},
	}
	for _, tt := range tests {
		if got := tt.outcome.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.outcome), got, tt.want)
		}
	}
	if !OutcomeSucceeded.Succeeded() || OutcomeFailed.Succeeded() || OutcomeUnconfirmed.Succeeded() {
		t.Error("Succeeded() predicate is wrong")
	}
}

// TestEndStatesAreConsistentWithStateMachine verifies that every Table II
// end state is reachable from the corresponding target state via the shadow
// state machine using the forged message's event.
func TestEndStatesAreConsistentWithStateMachine(t *testing.T) {
	// Map each single-message variant to its primitive event.
	events := map[AttackVariant]Event{
		VariantA2:   EventBind,
		VariantA3x1: EventUnbind,
		VariantA3x2: EventUnbind,
	}
	for v, e := range events {
		for _, target := range v.TargetStates() {
			got, err := Next(target, e)
			if err != nil {
				t.Errorf("%v: Next(%v, %v): %v", v, target, e, err)
				continue
			}
			if got != v.EndState() {
				t.Errorf("%v: Next(%v, %v) = %v, want end state %v", v, target, e, got, v.EndState())
			}
		}
	}
}
