package core

import "fmt"

// AttackClass is one of the four attack classes of Table II.
type AttackClass int

// The four attack classes.
const (
	// A1DataInjectionStealing: forged status messages let the attacker act
	// as the user's device, injecting fake sensor data or receiving the
	// user's private data.
	A1DataInjectionStealing AttackClass = iota + 1
	// A2BindingDoS: the attacker occupies the binding of a user's device
	// before the user binds, denying the legitimate binding.
	A2BindingDoS
	// A3DeviceUnbinding: the attacker disconnects the user from the
	// user's device.
	A3DeviceUnbinding
	// A4DeviceHijacking: the attacker takes absolute control of the
	// user's device.
	A4DeviceHijacking
)

// AllAttackClasses lists the four classes in declaration order.
func AllAttackClasses() []AttackClass {
	return []AttackClass{A1DataInjectionStealing, A2BindingDoS, A3DeviceUnbinding, A4DeviceHijacking}
}

// String implements fmt.Stringer.
func (c AttackClass) String() string {
	switch c {
	case A1DataInjectionStealing:
		return "A1"
	case A2BindingDoS:
		return "A2"
	case A3DeviceUnbinding:
		return "A3"
	case A4DeviceHijacking:
		return "A4"
	default:
		return fmt.Sprintf("AttackClass(%d)", int(c))
	}
}

// Description returns the consequence wording of Table II.
func (c AttackClass) Description() string {
	switch c {
	case A1DataInjectionStealing:
		return "The attacker can inject fake device data or steal private user data."
	case A2BindingDoS:
		return "The attacker can cause denial-of-service to the user's binding operation."
	case A3DeviceUnbinding:
		return "The attacker can disconnect the device with the user."
	case A4DeviceHijacking:
		return "The attacker can take absolute control of the device."
	default:
		return ""
	}
}

// AttackVariant identifies a concrete attack procedure from Table II,
// including the numbered sub-variants of A3 and A4.
type AttackVariant int

// The attack variants of Table II.
const (
	// VariantA1 forges Status:DevId in the control or bound state.
	VariantA1 AttackVariant = iota + 1
	// VariantA2 forges Bind:(DevId, UserToken) in the initial state.
	VariantA2
	// VariantA3x1 forges Unbind:DevId in the control state.
	VariantA3x1
	// VariantA3x2 forges Unbind:(DevId, UserToken) with the attacker's
	// token in the control state.
	VariantA3x2
	// VariantA3x3 forges Bind:(DevId, UserToken) in the control state to
	// replace (and thereby sever) the user's binding.
	VariantA3x3
	// VariantA3x4 forges Status:DevId in the control state so the cloud
	// adopts the attacker as a new device instance and disconnects the
	// real device.
	VariantA3x4
	// VariantA4x1 forges Bind:(DevId, UserToken) in the control state and
	// takes over control.
	VariantA4x1
	// VariantA4x2 forges Bind:(DevId, UserToken) in the online state
	// (setup time window) and takes over control.
	VariantA4x2
	// VariantA4x3 chains an unbind forgery (A3-1 or A3-2) with a bind
	// forgery to hijack a device from the control state.
	VariantA4x3
)

// AllAttackVariants lists the variants in Table II order.
func AllAttackVariants() []AttackVariant {
	return []AttackVariant{
		VariantA1, VariantA2,
		VariantA3x1, VariantA3x2, VariantA3x3, VariantA3x4,
		VariantA4x1, VariantA4x2, VariantA4x3,
	}
}

// Class returns the attack class the variant belongs to.
func (v AttackVariant) Class() AttackClass {
	switch v {
	case VariantA1:
		return A1DataInjectionStealing
	case VariantA2:
		return A2BindingDoS
	case VariantA3x1, VariantA3x2, VariantA3x3, VariantA3x4:
		return A3DeviceUnbinding
	case VariantA4x1, VariantA4x2, VariantA4x3:
		return A4DeviceHijacking
	default:
		return 0
	}
}

// String implements fmt.Stringer using the paper's labels.
func (v AttackVariant) String() string {
	switch v {
	case VariantA1:
		return "A1"
	case VariantA2:
		return "A2"
	case VariantA3x1:
		return "A3-1"
	case VariantA3x2:
		return "A3-2"
	case VariantA3x3:
		return "A3-3"
	case VariantA3x4:
		return "A3-4"
	case VariantA4x1:
		return "A4-1"
	case VariantA4x2:
		return "A4-2"
	case VariantA4x3:
		return "A4-3"
	default:
		return fmt.Sprintf("AttackVariant(%d)", int(v))
	}
}

// ForgedMessage returns the Table II "forged message types" column for the
// variant.
func (v AttackVariant) ForgedMessage() string {
	switch v {
	case VariantA1, VariantA3x4:
		return "Status : DevId"
	case VariantA2, VariantA3x3, VariantA4x1, VariantA4x2:
		return "Bind : (DevId, UserToken)"
	case VariantA3x1:
		return "Unbind : DevId"
	case VariantA3x2:
		return "Unbind : (DevId, UserToken)"
	case VariantA4x3:
		return "Unbind : DevId or (DevId, UserToken); then Bind : (DevId, UserToken)"
	default:
		return ""
	}
}

// TargetStates returns the shadow states in which the variant is launched
// (the Table II "targeted states" column).
func (v AttackVariant) TargetStates() []ShadowState {
	switch v {
	case VariantA1:
		return []ShadowState{StateControl, StateBound}
	case VariantA2:
		return []ShadowState{StateInitial}
	case VariantA3x1, VariantA3x2, VariantA3x3, VariantA3x4:
		return []ShadowState{StateControl}
	case VariantA4x1, VariantA4x3:
		return []ShadowState{StateControl}
	case VariantA4x2:
		return []ShadowState{StateOnline}
	default:
		return nil
	}
}

// EndState returns the shadow state a *successful* launch of the variant
// leaves the victim's device shadow in (the Table II "end states" column).
func (v AttackVariant) EndState() ShadowState {
	switch v {
	case VariantA1:
		return StateControl
	case VariantA2:
		return StateBound
	case VariantA3x1, VariantA3x2, VariantA3x3, VariantA3x4:
		return StateOnline
	case VariantA4x1, VariantA4x2, VariantA4x3:
		return StateControl
	default:
		return 0
	}
}

// Outcome is the result of attempting an attack against a design, matching
// the cell vocabulary of Table III.
type Outcome int

// Attack outcomes.
const (
	// OutcomeFailed: the attack failed to launch (✗).
	OutcomeFailed Outcome = iota + 1
	// OutcomeSucceeded: the attack was successfully launched (✓).
	OutcomeSucceeded
	// OutcomeUnconfirmed: the attack could not be confirmed, e.g. because
	// the firmware resisted analysis (O).
	OutcomeUnconfirmed
	// OutcomeNotApplicable: the design does not expose the operation the
	// attack forges (N.A.).
	OutcomeNotApplicable
)

// String renders the Table III cell mark.
func (o Outcome) String() string {
	switch o {
	case OutcomeFailed:
		return "✗"
	case OutcomeSucceeded:
		return "✓"
	case OutcomeUnconfirmed:
		return "O"
	case OutcomeNotApplicable:
		return "N.A."
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Succeeded reports whether the outcome is a confirmed success.
func (o Outcome) Succeeded() bool { return o == OutcomeSucceeded }
