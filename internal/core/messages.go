package core

import "fmt"

// MessageKind is one of the three primitive message types that drive shadow
// state transitions (Section III-B). Control messages and other traffic do
// not change binding state and are deliberately excluded from the model.
type MessageKind int

// The three primitive message kinds.
const (
	// MsgStatus is a registration or heartbeat message sent by the device.
	// Its reception marks the device online; its absence past the
	// heartbeat deadline marks the device offline.
	MsgStatus MessageKind = iota + 1
	// MsgBind creates a binding between a user and a device in the cloud.
	// It may be sent by the app or, in device-initiated designs, by the
	// device itself.
	MsgBind
	// MsgUnbind revokes an existing binding. It may be sent by the app or
	// by the device (e.g. on physical reset).
	MsgUnbind
)

// AllMessageKinds lists the primitive message kinds in declaration order.
func AllMessageKinds() []MessageKind {
	return []MessageKind{MsgStatus, MsgBind, MsgUnbind}
}

// Valid reports whether k is one of the defined message kinds.
func (k MessageKind) Valid() bool { return k >= MsgStatus && k <= MsgUnbind }

// String implements fmt.Stringer using the paper's notation (Table I).
func (k MessageKind) String() string {
	switch k {
	case MsgStatus:
		return "Status"
	case MsgBind:
		return "Bind"
	case MsgUnbind:
		return "Unbind"
	default:
		return fmt.Sprintf("MessageKind(%d)", int(k))
	}
}

// Sender identifies which party originated a primitive message.
type Sender int

// The parties that may originate primitive messages.
const (
	// SenderDevice marks a message originated by the IoT device (or by an
	// attacker impersonating it).
	SenderDevice Sender = iota + 1
	// SenderApp marks a message originated by the user's mobile app (or by
	// an attacker's app/API client).
	SenderApp
)

// String implements fmt.Stringer.
func (s Sender) String() string {
	switch s {
	case SenderDevice:
		return "device"
	case SenderApp:
		return "app"
	default:
		return fmt.Sprintf("Sender(%d)", int(s))
	}
}

// Notation names a credential or identifier field from Table I. The
// constants exist so that reports and analysis output can speak the paper's
// exact vocabulary.
type Notation string

// Table I notations.
const (
	// NotationStatus: messages to report device status (sent by the device).
	NotationStatus Notation = "Status"
	// NotationBind: messages to create bindings in the cloud.
	NotationBind Notation = "Bind"
	// NotationUnbind: messages to revoke bindings in the cloud.
	NotationUnbind Notation = "Unbind"
	// NotationDevID: a piece of definite (static) data for device authentication.
	NotationDevID Notation = "DevId"
	// NotationDevToken: a piece of random data for device authentication.
	NotationDevToken Notation = "DevToken"
	// NotationBindToken: a piece of random data for the authorization in binding creation.
	NotationBindToken Notation = "BindToken"
	// NotationUserToken: a piece of random data for user authentication.
	NotationUserToken Notation = "UserToken"
	// NotationUserID: identifier (e.g. email address) of a user account.
	NotationUserID Notation = "UserId"
	// NotationUserPw: password of a user account.
	NotationUserPw Notation = "UserPw"
)

// NotationTable returns Table I as (notation, description) pairs in the
// paper's order.
func NotationTable() []struct {
	Notation    Notation
	Description string
} {
	return []struct {
		Notation    Notation
		Description string
	}{
		{NotationStatus, "Messages to report device status (sent by the device)"},
		{NotationBind, "Messages to create bindings in the cloud"},
		{NotationUnbind, "Messages to revoke bindings in the cloud"},
		{NotationDevID, "A piece of definite data for device authentication"},
		{NotationDevToken, "A piece of random data for device authentication"},
		{NotationBindToken, "A piece of random data for the authorization in binding creation"},
		{NotationUserToken, "A piece of random data for user authentication"},
		{NotationUserID, "Identifier (e.g. email address) of user account"},
		{NotationUserPw, "Password of user account"},
	}
}
