package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestStateMachineMatchesFigure2 verifies that the transition function
// reproduces exactly the six numbered edges of Figure 2.
func TestStateMachineMatchesFigure2(t *testing.T) {
	for _, edge := range Figure2Edges() {
		got, err := Next(edge.From, edge.Event)
		if err != nil {
			t.Errorf("Next(%v, %v): unexpected error %v", edge.From, edge.Event, err)
			continue
		}
		if got != edge.To {
			t.Errorf("Next(%v, %v) = %v, want %v", edge.From, edge.Event, got, edge.To)
		}
	}
}

func TestNextRejectsInvalidTransitions(t *testing.T) {
	tests := []struct {
		state ShadowState
		event Event
	}{
		{StateInitial, EventUnbind},       // nothing to revoke
		{StateOnline, EventUnbind},        // nothing to revoke
		{StateControl, EventBind},         // already bound
		{StateBound, EventBind},           // already bound
		{StateInitial, EventStatusExpire}, // already offline
		{StateBound, EventStatusExpire},   // already offline
	}
	for _, tt := range tests {
		if _, err := Next(tt.state, tt.event); !errors.Is(err, ErrInvalidTransition) {
			t.Errorf("Next(%v, %v) error = %v, want ErrInvalidTransition", tt.state, tt.event, err)
		}
	}
}

func TestNextHeartbeatIsSelfLoop(t *testing.T) {
	for _, s := range []ShadowState{StateOnline, StateControl} {
		got, err := Next(s, EventStatus)
		if err != nil {
			t.Fatalf("Next(%v, status): %v", s, err)
		}
		if got != s {
			t.Errorf("heartbeat in %v moved to %v, want self-loop", s, got)
		}
	}
}

func TestNextStatusExpire(t *testing.T) {
	tests := []struct {
		from, to ShadowState
	}{
		{StateOnline, StateInitial},
		{StateControl, StateBound},
	}
	for _, tt := range tests {
		got, err := Next(tt.from, EventStatusExpire)
		if err != nil {
			t.Fatalf("Next(%v, expire): %v", tt.from, err)
		}
		if got != tt.to {
			t.Errorf("Next(%v, expire) = %v, want %v", tt.from, got, tt.to)
		}
	}
}

func TestNextRejectsInvalidInputs(t *testing.T) {
	if _, err := Next(ShadowState(0), EventStatus); !errors.Is(err, ErrInvalidTransition) {
		t.Errorf("invalid state error = %v, want ErrInvalidTransition", err)
	}
	if _, err := Next(StateInitial, Event(99)); !errors.Is(err, ErrInvalidTransition) {
		t.Errorf("invalid event error = %v, want ErrInvalidTransition", err)
	}
}

// TestTransitionsPreserveAxes checks the structural invariant of the model:
// status events only move the online axis and bind/unbind events only move
// the bound axis.
func TestTransitionsPreserveAxes(t *testing.T) {
	for _, s := range AllStates() {
		for _, e := range AllEvents() {
			next, err := Next(s, e)
			if err != nil {
				continue
			}
			switch e {
			case EventStatus, EventStatusExpire:
				if next.BoundToUser() != s.BoundToUser() {
					t.Errorf("%v on %v changed bound axis: %v -> %v", e, s, s, next)
				}
			case EventBind, EventUnbind:
				if next.Online() != s.Online() {
					t.Errorf("%v on %v changed online axis: %v -> %v", e, s, s, next)
				}
			}
		}
	}
}

func TestTransitionTableIsComplete(t *testing.T) {
	table := TransitionTable()
	// 4 states x 4 events = 16 pairs; invalid ones are: unbind in 2
	// unbound states, bind in 2 bound states, expire in 2 offline states.
	const want = 16 - 6
	if len(table) != want {
		t.Fatalf("TransitionTable() has %d edges, want %d", len(table), want)
	}
	for _, tr := range table {
		next, err := Next(tr.From, tr.Event)
		if err != nil || next != tr.To {
			t.Errorf("table edge %v disagrees with Next (got %v, %v)", tr, next, err)
		}
	}
}

func TestFigure2EdgesAreSubsetOfTable(t *testing.T) {
	valid := make(map[Transition]bool)
	for _, tr := range TransitionTable() {
		valid[tr] = true
	}
	for _, edge := range Figure2Edges() {
		if !valid[edge] {
			t.Errorf("Figure 2 edge %v not in transition table", edge)
		}
	}
}

func TestMachineApplyAndTrace(t *testing.T) {
	m := NewMachine()
	steps := []struct {
		event Event
		want  ShadowState
	}{
		{EventStatus, StateOnline},
		{EventBind, StateControl},
		{EventStatusExpire, StateBound},
		{EventStatus, StateControl},
		{EventUnbind, StateOnline},
		{EventStatusExpire, StateInitial},
	}
	for i, st := range steps {
		got, err := m.Apply(st.event)
		if err != nil {
			t.Fatalf("step %d (%v): %v", i, st.event, err)
		}
		if got != st.want {
			t.Fatalf("step %d (%v) = %v, want %v", i, st.event, got, st.want)
		}
	}
	trace := m.Trace()
	if len(trace) != len(steps) {
		t.Fatalf("trace has %d edges, want %d", len(trace), len(steps))
	}
	if trace[0].From != StateInitial || trace[len(trace)-1].To != StateInitial {
		t.Errorf("trace endpoints = %v .. %v, want initial .. initial", trace[0], trace[len(trace)-1])
	}
}

func TestMachineInvalidEventKeepsState(t *testing.T) {
	m := NewMachine()
	if _, err := m.Apply(EventUnbind); !errors.Is(err, ErrInvalidTransition) {
		t.Fatalf("Apply(unbind) error = %v, want ErrInvalidTransition", err)
	}
	if m.State() != StateInitial {
		t.Errorf("state after failed event = %v, want initial", m.State())
	}
	if len(m.Trace()) != 0 {
		t.Errorf("trace after failed event has %d edges, want 0", len(m.Trace()))
	}
}

func TestMachineReset(t *testing.T) {
	m := NewMachine()
	if _, err := m.Apply(EventStatus); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.State() != StateInitial || len(m.Trace()) != 0 {
		t.Errorf("after Reset: state=%v trace=%d, want initial, 0", m.State(), len(m.Trace()))
	}
}

// TestMachineStaysValidUnderRandomEvents is a property test: no sequence of
// events can drive the machine into an undefined state, and every accepted
// transition appears in the transition table.
func TestMachineStaysValidUnderRandomEvents(t *testing.T) {
	valid := make(map[Transition]bool)
	for _, tr := range TransitionTable() {
		valid[tr] = true
	}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMachine()
		events := AllEvents()
		for i := 0; i < int(n); i++ {
			e := events[rng.Intn(len(events))]
			before := m.State()
			after, err := m.Apply(e)
			if err != nil {
				if after != before {
					return false // failed apply must not move
				}
				continue
			}
			if !after.Valid() {
				return false
			}
			if !valid[Transition{From: before, Event: e, To: after}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestControlReachability documents the two paths from initial to control
// described in Section III-B: bind-then-authenticate and
// authenticate-then-bind.
func TestControlReachability(t *testing.T) {
	paths := [][]Event{
		{EventBind, EventStatus}, // initial -> bound -> control
		{EventStatus, EventBind}, // initial -> online -> control
	}
	for i, path := range paths {
		m := NewMachine()
		for _, e := range path {
			if _, err := m.Apply(e); err != nil {
				t.Fatalf("path %d, event %v: %v", i, e, err)
			}
		}
		if m.State() != StateControl {
			t.Errorf("path %d ends in %v, want control", i, m.State())
		}
	}
}
