package core

import (
	"errors"
	"testing"
)

func validSpec() DesignSpec {
	return DesignSpec{
		Name:                   "reference",
		DeviceAuth:             AuthDevToken,
		Binding:                BindACLApp,
		UnbindForms:            []UnbindForm{UnbindDevIDUserToken},
		CheckBoundUserOnBind:   true,
		CheckBoundUserOnUnbind: true,
	}
}

func TestDesignSpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*DesignSpec)
		wantErr error
	}{
		{"valid", func(d *DesignSpec) {}, nil},
		{"missing name", func(d *DesignSpec) { d.Name = "" }, ErrNoName},
		{"bad auth", func(d *DesignSpec) { d.DeviceAuth = 0 }, ErrBadAuthMode},
		{"unknown auth without assumption", func(d *DesignSpec) { d.DeviceAuth = AuthUnknown }, ErrBadAssumedAuth},
		{"unknown auth with assumption", func(d *DesignSpec) {
			d.DeviceAuth = AuthUnknown
			d.AssumedAuth = AuthDevID
		}, nil},
		{"bad binding", func(d *DesignSpec) { d.Binding = 0 }, ErrBadBinding},
		{"bad unbind form", func(d *DesignSpec) { d.UnbindForms = []UnbindForm{99} }, ErrBadUnbindForm},
		{"replace form without replace flag", func(d *DesignSpec) {
			d.UnbindForms = []UnbindForm{UnbindReplaceByBind}
		}, ErrReplaceConflict},
		{"replace form with replace flag", func(d *DesignSpec) {
			d.UnbindForms = []UnbindForm{UnbindReplaceByBind}
			d.ReplaceOnBind = true
		}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := validSpec()
			tt.mutate(&spec)
			err := spec.Validate()
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestEffectiveAuth(t *testing.T) {
	spec := validSpec()
	if got := spec.EffectiveAuth(); got != AuthDevToken {
		t.Errorf("EffectiveAuth() = %v, want DevToken", got)
	}
	spec.DeviceAuth = AuthUnknown
	spec.AssumedAuth = AuthDevID
	if got := spec.EffectiveAuth(); got != AuthDevID {
		t.Errorf("EffectiveAuth() with unknown = %v, want DevId", got)
	}
}

func TestSupportsUnbind(t *testing.T) {
	spec := validSpec()
	spec.UnbindForms = []UnbindForm{UnbindDevIDUserToken, UnbindDevIDAlone}
	if !spec.SupportsUnbind(UnbindDevIDAlone) {
		t.Error("SupportsUnbind(DevId) = false, want true")
	}
	if spec.SupportsUnbind(UnbindReplaceByBind) {
		t.Error("SupportsUnbind(replace) = true, want false")
	}
}

func TestUnbindNotation(t *testing.T) {
	tests := []struct {
		forms []UnbindForm
		want  string
	}{
		{nil, "N.A."},
		{[]UnbindForm{UnbindDevIDUserToken}, "(DevId, UserToken)"},
		{[]UnbindForm{UnbindDevIDUserToken, UnbindDevIDAlone}, "(DevId, UserToken) & DevId"},
	}
	for _, tt := range tests {
		spec := validSpec()
		spec.UnbindForms = tt.forms
		if got := spec.UnbindNotation(); got != tt.want {
			t.Errorf("UnbindNotation(%v) = %q, want %q", tt.forms, got, tt.want)
		}
	}
}

func TestNotationTable(t *testing.T) {
	table := NotationTable()
	if len(table) != 9 {
		t.Fatalf("NotationTable() has %d rows, want 9 (Table I)", len(table))
	}
	wantFirst, wantLast := NotationStatus, NotationUserPw
	if table[0].Notation != wantFirst || table[len(table)-1].Notation != wantLast {
		t.Errorf("table order = %v .. %v, want %v .. %v",
			table[0].Notation, table[len(table)-1].Notation, wantFirst, wantLast)
	}
	for _, row := range table {
		if row.Description == "" {
			t.Errorf("notation %v has empty description", row.Notation)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if AuthDevID.String() != "DevId" || AuthDevToken.String() != "DevToken" ||
		AuthPublicKey.String() != "PublicKey" || AuthUnknown.String() != "O" {
		t.Error("DeviceAuthMode strings do not match paper notation")
	}
	if BindACLApp.String() != "ACL (sent by the app)" {
		t.Errorf("BindACLApp.String() = %q", BindACLApp.String())
	}
	if MsgStatus.String() != "Status" || MsgBind.String() != "Bind" || MsgUnbind.String() != "Unbind" {
		t.Error("MessageKind strings do not match Table I")
	}
	if SenderDevice.String() != "device" || SenderApp.String() != "app" {
		t.Error("Sender strings are wrong")
	}
}
