package core

import (
	"errors"
	"fmt"
)

// Event is an accepted primitive action applied to a device shadow. Events
// model what the cloud does *after* its policy checks accept a message; the
// checks themselves live in the cloud implementation and in the analysis
// package.
type Event int

// Shadow events.
const (
	// EventStatus is an accepted status (registration or heartbeat)
	// message: the device becomes or stays online.
	EventStatus Event = iota + 1
	// EventStatusExpire is the heartbeat deadline passing with no status
	// message: the device becomes offline.
	EventStatusExpire
	// EventBind is an accepted binding creation.
	EventBind
	// EventUnbind is an accepted binding revocation.
	EventUnbind
)

// AllEvents lists every shadow event in declaration order.
func AllEvents() []Event {
	return []Event{EventStatus, EventStatusExpire, EventBind, EventUnbind}
}

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e {
	case EventStatus:
		return "status"
	case EventStatusExpire:
		return "status-expire"
	case EventBind:
		return "bind"
	case EventUnbind:
		return "unbind"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// ErrInvalidTransition reports an event that is not meaningful in the
// current state (e.g. unbinding an unbound device).
var ErrInvalidTransition = errors.New("core: invalid shadow transition")

// Next returns the state that follows from applying event e in state s.
// The mapping is exactly Figure 2 of the paper: status messages flip the
// online axis, bind/unbind flip the bound axis. Events that do not apply in
// s (EventBind in a bound state, EventUnbind in an unbound state, and
// EventStatusExpire while already offline) return ErrInvalidTransition;
// EventStatus in an online state is a heartbeat and keeps the state.
func Next(s ShadowState, e Event) (ShadowState, error) {
	if !s.Valid() {
		return 0, fmt.Errorf("%w: invalid state %v", ErrInvalidTransition, s)
	}
	switch e {
	case EventStatus:
		return StateOf(true, s.BoundToUser()), nil
	case EventStatusExpire:
		if !s.Online() {
			return 0, fmt.Errorf("%w: %v is already offline", ErrInvalidTransition, s)
		}
		return StateOf(false, s.BoundToUser()), nil
	case EventBind:
		if s.BoundToUser() {
			return 0, fmt.Errorf("%w: %v is already bound", ErrInvalidTransition, s)
		}
		return StateOf(s.Online(), true), nil
	case EventUnbind:
		if !s.BoundToUser() {
			return 0, fmt.Errorf("%w: %v is not bound", ErrInvalidTransition, s)
		}
		return StateOf(s.Online(), false), nil
	default:
		return 0, fmt.Errorf("%w: unknown event %v", ErrInvalidTransition, e)
	}
}

// Transition is one labelled edge of the Figure 2 state machine.
type Transition struct {
	From  ShadowState
	Event Event
	To    ShadowState
}

// String renders the edge as "from --event--> to".
func (t Transition) String() string {
	return fmt.Sprintf("%v --%v--> %v", t.From, t.Event, t.To)
}

// TransitionTable enumerates every valid (state, event) pair with its
// successor, covering the six numbered edges of Figure 2 plus heartbeat
// self-loops and the offline-expiry edges.
func TransitionTable() []Transition {
	var table []Transition
	for _, s := range AllStates() {
		for _, e := range AllEvents() {
			next, err := Next(s, e)
			if err != nil {
				continue
			}
			table = append(table, Transition{From: s, Event: e, To: next})
		}
	}
	return table
}

// Figure2Edges returns only the six numbered edges of Figure 2 (the edges
// that change state), in the paper's numbering order:
//
//	① initial --status--> online      (device authentication)
//	② initial --bind--> bound         (binding creation before device online)
//	③ bound --unbind--> initial       (binding revocation while offline)
//	④ online --bind--> control        (binding creation)
//	⑤ control --unbind--> online      (binding revocation)
//	⑥ bound --status--> control       (device authentication)
func Figure2Edges() []Transition {
	return []Transition{
		{From: StateInitial, Event: EventStatus, To: StateOnline},
		{From: StateInitial, Event: EventBind, To: StateBound},
		{From: StateBound, Event: EventUnbind, To: StateInitial},
		{From: StateOnline, Event: EventBind, To: StateControl},
		{From: StateControl, Event: EventUnbind, To: StateOnline},
		{From: StateBound, Event: EventStatus, To: StateControl},
	}
}

// Machine is a mutable device shadow that applies events and records the
// trace of transitions it has taken. The zero value is not usable; create
// one with NewMachine. Machine is not safe for concurrent use; the cloud
// serialises access per device.
type Machine struct {
	state ShadowState
	trace []Transition
}

// NewMachine returns a shadow machine in the initial state.
func NewMachine() *Machine {
	return &Machine{state: StateInitial}
}

// RestoreMachine returns a machine positioned at a previously persisted
// state. The trace of the original machine is not restored.
func RestoreMachine(state ShadowState) (*Machine, error) {
	if !state.Valid() {
		return nil, fmt.Errorf("%w: cannot restore state %v", ErrInvalidTransition, state)
	}
	return &Machine{state: state}, nil
}

// State returns the current shadow state.
func (m *Machine) State() ShadowState { return m.state }

// Apply transitions the machine on event e, recording the edge. It returns
// the new state, or ErrInvalidTransition (leaving the state unchanged) when
// the event does not apply.
func (m *Machine) Apply(e Event) (ShadowState, error) {
	next, err := Next(m.state, e)
	if err != nil {
		return m.state, err
	}
	m.trace = append(m.trace, Transition{From: m.state, Event: e, To: next})
	m.state = next
	return next, nil
}

// Trace returns a copy of the transitions applied so far.
func (m *Machine) Trace() []Transition {
	out := make([]Transition, len(m.trace))
	copy(out, m.trace)
	return out
}

// Reset returns the machine to the initial state and clears the trace.
func (m *Machine) Reset() {
	m.state = StateInitial
	m.trace = nil
}
