// Package campaign quantifies the paper's scalable denial-of-service
// warning (Sections I and V-C) at fleet scale: a vendor ships a
// population of devices under some ID scheme, a remote attacker sweeps
// the identifier space at a fixed forged-request rate, and the campaign
// reports the fraction of the fleet whose bindings the attacker has
// occupied at each observation time.
//
// The sweep runs against the real emulated cloud — every probe is an
// actual ShadowState lookup and every hit an actual forged Bind — so the
// curve reflects the design's true policy behaviour, with simulated time
// supplying the request budget.
package campaign

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"github.com/iotbind/iotbind/internal/attacker"
	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/devid"
	"github.com/iotbind/iotbind/internal/transport"
)

// Config describes one exposure campaign.
type Config struct {
	// Design is the vendor's remote-binding design.
	Design core.DesignSpec
	// Fleet generates the shipped devices' IDs: the fleet occupies
	// assignment indexes 0..FleetSize-1, the sequential allocation the
	// paper observes in the wild.
	Fleet devid.Generator
	// Candidates generates the attacker's sweep order over the ID space.
	// For structured schemes this is the same generator (the space IS
	// the index range); for random IDs it is a differently seeded
	// generator, modelling blind guessing.
	Candidates devid.Generator
	// FleetSize is the number of shipped devices.
	FleetSize int
	// RatePerSecond is the attacker's sustained forged-request rate.
	RatePerSecond float64
	// Observations are the elapsed times to report at (ascending).
	Observations []time.Duration
	// Workers is the number of concurrent sweep workers. Zero or one
	// runs the sweep sequentially; larger values partition each
	// observation's probe budget into contiguous index ranges swept in
	// parallel — the fleet-concurrency mode a sharded cloud admits. The
	// occupation curve is identical at every worker count: every
	// candidate index is probed exactly once and per-device outcomes are
	// independent, so the merged counts are deterministic.
	Workers int
}

// Point is the campaign state at one observation time.
type Point struct {
	// Elapsed is the simulated time since the sweep began.
	Elapsed time.Duration
	// Probed is the cumulative number of candidate IDs tried.
	Probed uint64
	// Occupied is the number of fleet devices whose bindings the
	// attacker holds.
	Occupied int
	// Fraction is Occupied / FleetSize.
	Fraction float64
}

// Run executes the campaign and returns one Point per observation.
func Run(cfg Config) ([]Point, error) {
	if err := cfg.Design.Validate(); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if cfg.FleetSize <= 0 || cfg.RatePerSecond <= 0 || len(cfg.Observations) == 0 {
		return nil, fmt.Errorf("campaign: fleet size, rate and observations must be positive")
	}
	for i := 1; i < len(cfg.Observations); i++ {
		if cfg.Observations[i] < cfg.Observations[i-1] {
			return nil, fmt.Errorf("campaign: observations must ascend")
		}
	}

	registry := cloud.NewRegistry()
	for i := 0; i < cfg.FleetSize; i++ {
		id, err := cfg.Fleet.Generate(uint64(i))
		if err != nil {
			return nil, fmt.Errorf("campaign: fleet ID %d: %w", i, err)
		}
		if err := registry.Add(cloud.DeviceRecord{ID: id, FactorySecret: "fleet-" + id, Model: cfg.Design.Name}); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
	}
	svc, err := cloud.NewService(cfg.Design, registry)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	atk, err := attacker.New("campaign-attacker@example.com", "pw", cfg.Design,
		transport.StampSource(svc, "198.51.100.66"))
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := atk.Prepare(); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}

	var (
		points   []Point
		occupied int
		cursor   uint64
	)
	for _, at := range cfg.Observations {
		budget := uint64(at.Seconds() * cfg.RatePerSecond)
		if budget > cursor {
			chunk := budget - cursor
			tried, hits, err := sweepChunk(atk, cfg, cursor, chunk)
			if err != nil {
				return nil, fmt.Errorf("campaign: sweep at %v: %w", at, err)
			}
			occupied += hits
			cursor += tried
			if tried < chunk {
				// The candidate space is exhausted; the cursor saturates.
				cursor = budget
			}
		}
		points = append(points, Point{
			Elapsed:  at,
			Probed:   min64(cursor, budgetCap(cfg)),
			Occupied: occupied,
			Fraction: float64(occupied) / float64(cfg.FleetSize),
		})
	}
	return points, nil
}

// WriteTable renders a campaign's curve.
func WriteTable(w io.Writer, title string, points []Point) error {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	b.WriteString(fmt.Sprintf("%-12s  %-12s  %-10s  %s\n", "elapsed", "IDs probed", "occupied", "fleet fraction"))
	b.WriteString(strings.Repeat("-", 56))
	b.WriteString("\n")
	for _, p := range points {
		b.WriteString(fmt.Sprintf("%-12s  %-12d  %-10d  %.1f%%\n",
			devid.HumanDuration(p.Elapsed), p.Probed, p.Occupied, p.Fraction*100))
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// sweepChunk probes the candidate range [start, start+count) and returns
// how many indexes were actually tried (short when the space ends) and
// how many fleet bindings were occupied. With cfg.Workers > 1 the range
// is partitioned into contiguous sub-ranges swept concurrently; each
// worker's per-range totals are merged in worker order, so the result is
// identical to a sequential sweep.
func sweepChunk(atk *attacker.Attacker, cfg Config, start, count uint64) (uint64, int, error) {
	workers := cfg.Workers
	if workers > 1 && uint64(workers) > count {
		workers = int(count)
	}
	if workers <= 1 {
		result, err := atk.SweepBindDoS(cfg.Candidates, start, count)
		return result.Tried, len(result.Occupied), err
	}

	type sweepOut struct {
		result attacker.SweepResult
		err    error
	}
	outs := make([]sweepOut, workers)
	share := count / uint64(workers)
	extra := count % uint64(workers)
	var (
		wg   sync.WaitGroup
		next = start
	)
	for w := 0; w < workers; w++ {
		span := share
		if uint64(w) < extra {
			span++
		}
		wStart := next
		next += span
		wg.Add(1)
		go func(w int, wStart, span uint64) {
			defer wg.Done()
			result, err := atk.SweepBindDoS(cfg.Candidates, wStart, span)
			outs[w] = sweepOut{result: result, err: err}
		}(w, wStart, span)
	}
	wg.Wait()

	var (
		tried uint64
		hits  int
	)
	for _, out := range outs {
		if out.err != nil {
			return tried, hits, out.err
		}
		tried += out.result.Tried
		hits += len(out.result.Occupied)
	}
	return tried, hits, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// budgetCap bounds the reported probe count by the candidate space for
// readability.
func budgetCap(cfg Config) uint64 {
	space := cfg.Candidates.SearchSpace()
	if !space.IsUint64() {
		return ^uint64(0)
	}
	return space.Uint64()
}
