package campaign_test

import (
	"strings"
	"testing"
	"time"

	"github.com/iotbind/iotbind/internal/campaign"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/devid"
	"github.com/iotbind/iotbind/internal/vendors"
)

func dlinkDesign(t *testing.T) core.DesignSpec {
	t.Helper()
	p, ok := vendors.ByVendor("D-LINK")
	if !ok {
		t.Fatal("no D-LINK profile")
	}
	return p.Design
}

// TestCampaignSweepsDigitFleet: a 6-digit fleet falls completely once the
// sweep covers the space — the Section V-C scalable DoS, measured.
func TestCampaignSweepsDigitFleet(t *testing.T) {
	gen, err := devid.NewShortDigitsGenerator(4) // 10^4 space keeps the test fast
	if err != nil {
		t.Fatal(err)
	}
	points, err := campaign.Run(campaign.Config{
		Design:        dlinkDesign(t),
		Fleet:         gen,
		Candidates:    gen,
		FleetSize:     40,
		RatePerSecond: 100,
		Observations: []time.Duration{
			10 * time.Second,  // 1000 probes: 10% of the space
			50 * time.Second,  // 5000 probes: half
			100 * time.Second, // the whole space
			200 * time.Second, // saturated
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	// The fleet sits at indexes 0..39, so even the first observation has
	// swept past it.
	if points[0].Occupied != 40 {
		t.Errorf("occupied after 10s = %d, want the whole fleet (dense low IDs)", points[0].Occupied)
	}
	if points[2].Fraction != 1.0 {
		t.Errorf("fraction after full sweep = %v, want 1.0", points[2].Fraction)
	}
	// Monotone and saturating.
	for i := 1; i < len(points); i++ {
		if points[i].Occupied < points[i-1].Occupied {
			t.Errorf("occupation not monotone: %+v", points)
		}
	}
	if points[3].Probed > 10_000 {
		t.Errorf("probed %d exceeds the candidate space", points[3].Probed)
	}
}

// TestCampaignRandomIDsResist: blind guessing against 128-bit IDs
// occupies nothing.
func TestCampaignRandomIDsResist(t *testing.T) {
	points, err := campaign.Run(campaign.Config{
		Design:        dlinkDesign(t),
		Fleet:         devid.NewRandomGenerator(1),
		Candidates:    devid.NewRandomGenerator(2), // different seed: guessing
		FleetSize:     25,
		RatePerSecond: 1000,
		Observations:  []time.Duration{time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Occupied != 0 {
		t.Errorf("occupied = %d, want 0 against random IDs", points[0].Occupied)
	}
}

// TestCampaignSecureDesignResists: even with a fully enumerable scheme, a
// capability-binding cloud yields no occupations — probes find the
// devices but the forged binds all fail.
func TestCampaignSecureDesignResists(t *testing.T) {
	gen, err := devid.NewShortDigitsGenerator(3)
	if err != nil {
		t.Fatal(err)
	}
	points, err := campaign.Run(campaign.Config{
		Design:        vendors.SecureReference().Design,
		Fleet:         gen,
		Candidates:    gen,
		FleetSize:     20,
		RatePerSecond: 100,
		Observations:  []time.Duration{20 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Occupied != 0 {
		t.Errorf("occupied = %d, want 0 under capability binding", points[0].Occupied)
	}
}

func TestCampaignValidation(t *testing.T) {
	gen, err := devid.NewShortDigitsGenerator(3)
	if err != nil {
		t.Fatal(err)
	}
	base := campaign.Config{
		Design: dlinkDesign(t), Fleet: gen, Candidates: gen,
		FleetSize: 5, RatePerSecond: 10,
		Observations: []time.Duration{time.Second},
	}

	bad := base
	bad.FleetSize = 0
	if _, err := campaign.Run(bad); err == nil {
		t.Error("fleet size 0 accepted")
	}
	bad = base
	bad.RatePerSecond = 0
	if _, err := campaign.Run(bad); err == nil {
		t.Error("rate 0 accepted")
	}
	bad = base
	bad.Observations = nil
	if _, err := campaign.Run(bad); err == nil {
		t.Error("no observations accepted")
	}
	bad = base
	bad.Observations = []time.Duration{2 * time.Second, time.Second}
	if _, err := campaign.Run(bad); err == nil {
		t.Error("descending observations accepted")
	}
	bad = base
	bad.Design = core.DesignSpec{}
	if _, err := campaign.Run(bad); err == nil {
		t.Error("invalid design accepted")
	}
}

func TestWriteTable(t *testing.T) {
	var b strings.Builder
	err := campaign.WriteTable(&b, "Exposure", []campaign.Point{
		{Elapsed: time.Minute, Probed: 6000, Occupied: 12, Fraction: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Exposure", "6000", "12", "30.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCampaignWorkersDeterministic: the parallel sweep partitions each
// observation's probe budget across workers but must reproduce the
// sequential exposure curve bit-for-bit at every worker count.
func TestCampaignWorkersDeterministic(t *testing.T) {
	gen, err := devid.NewShortDigitsGenerator(4)
	if err != nil {
		t.Fatal(err)
	}
	base := campaign.Config{
		Design:        dlinkDesign(t),
		Fleet:         gen,
		Candidates:    gen,
		FleetSize:     40,
		RatePerSecond: 100,
		Observations: []time.Duration{
			10 * time.Second,
			50 * time.Second,
			100 * time.Second,
			200 * time.Second,
		},
	}
	want, err := campaign.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 7} {
		cfg := base
		cfg.Workers = workers
		got, err := campaign.Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d point %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}
