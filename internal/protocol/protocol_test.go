package protocol

import (
	"encoding/json"
	"testing"
	"testing/quick"
	"time"

	"github.com/iotbind/iotbind/internal/core"
)

func TestStatusKindString(t *testing.T) {
	if StatusRegister.String() != "register" || StatusHeartbeat.String() != "heartbeat" {
		t.Error("status kind strings wrong")
	}
	if StatusKind(0).String() != "unknown" {
		t.Error("zero status kind should be unknown")
	}
}

func TestStatusRequestJSONRoundTrip(t *testing.T) {
	req := StatusRequest{
		Kind:     StatusHeartbeat,
		DeviceID: "AA:BB:CC:00:00:01",
		DevToken: "tok",
		Readings: []Reading{{Name: "power_w", Value: 12.5, At: time.Unix(1000, 0).UTC()}},
		SourceIP: "203.0.113.7",
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var got StatusRequest
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.DeviceID != req.DeviceID || got.DevToken != req.DevToken || len(got.Readings) != 1 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if got.SourceIP != "" {
		t.Error("SourceIP must not travel in the JSON body (transport-assigned)")
	}
}

func TestBindRequestJSONRoundTrip(t *testing.T) {
	req := BindRequest{
		DeviceID:  "dev-1",
		UserToken: "ut",
		Sender:    core.SenderApp,
		SourceIP:  "198.51.100.66",
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var got BindRequest
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.DeviceID != "dev-1" || got.UserToken != "ut" || got.Sender != core.SenderApp {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if got.SourceIP != "" {
		t.Error("SourceIP must not travel in the JSON body")
	}
}

func TestProofsAreDeterministicAndDistinct(t *testing.T) {
	const secret, devID = "factory-secret", "dev-1"
	p1 := PairingProof(secret, devID)
	p2 := PairingProof(secret, devID)
	if p1 != p2 {
		t.Error("PairingProof not deterministic")
	}
	if PairingProof("other", devID) == p1 {
		t.Error("PairingProof ignores secret")
	}
	if PairingProof(secret, "dev-2") == p1 {
		t.Error("PairingProof ignores device ID")
	}
	all := map[string]string{
		"pairing": PairingProof(secret, devID),
		"sig-reg": StatusSignature(secret, devID, StatusRegister),
		"sig-hb":  StatusSignature(secret, devID, StatusHeartbeat),
		"data":    DataProof(secret, "nonce"),
		"bind":    BindProof(secret, "token"),
	}
	seen := make(map[string]string, len(all))
	for name, proof := range all {
		if len(proof) != 64 {
			t.Errorf("%s proof length %d, want 64 hex chars", name, len(proof))
		}
		if prev, dup := seen[proof]; dup {
			t.Errorf("proof collision between %s and %s", name, prev)
		}
		seen[proof] = name
	}
}

func TestVerifyProof(t *testing.T) {
	p := DataProof("s", "n")
	if !VerifyProof(p, p) {
		t.Error("VerifyProof rejects equal proofs")
	}
	if VerifyProof(p, DataProof("s", "m")) {
		t.Error("VerifyProof accepts different proofs")
	}
	if VerifyProof("", p) {
		t.Error("VerifyProof accepts empty proof")
	}
}

// TestProofForgeryResistance is a property test: proofs computed under a
// different secret never verify.
func TestProofForgeryResistance(t *testing.T) {
	f := func(secret, forged, devID string) bool {
		if secret == forged {
			return true
		}
		return !VerifyProof(PairingProof(forged, devID), PairingProof(secret, devID))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestErrorVocabularyDistinct(t *testing.T) {
	errs := []error{
		ErrAuthFailed, ErrUnknownDevice, ErrAlreadyBound, ErrNotBound,
		ErrNotPermitted, ErrUnsupported, ErrOutsideWindow, ErrDeviceOffline,
		ErrBadRequest, ErrUserExists,
	}
	seen := make(map[string]bool, len(errs))
	for _, err := range errs {
		if err == nil || err.Error() == "" {
			t.Fatal("nil or empty error in vocabulary")
		}
		if seen[err.Error()] {
			t.Errorf("duplicate error message %q", err.Error())
		}
		seen[err.Error()] = true
	}
}
