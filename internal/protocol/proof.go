package protocol

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
)

// The proof helpers below derive the HMAC credentials used where the
// emulation needs "something only the real firmware can compute": the
// per-device factory secret plays the role of the provisioned key material
// (the private key of public-key designs, the session crypto of opaque
// device protocols, the pairing code revealed over the local network).

// PairingProof derives the local-pairing proof a device in setup mode
// reveals over the LAN. The app forwards it when requesting a dynamic
// device token, demonstrating local possession of the device.
func PairingProof(factorySecret, deviceID string) string {
	return hmacHex(factorySecret, "pairing:"+deviceID)
}

// StatusSignature derives the per-message signature of public-key designs
// (AWS IoT style): an HMAC over the device ID and message kind.
func StatusSignature(factorySecret, deviceID string, kind StatusKind) string {
	return hmacHex(factorySecret, "status:"+deviceID+":"+kind.String())
}

// DataProof derives the in-session data proof of DataRequiresSession
// designs from the register-time session nonce.
func DataProof(factorySecret, sessionNonce string) string {
	return hmacHex(factorySecret, "data:"+sessionNonce)
}

// BindProof derives the capability-binding submission proof: it ties a
// bind token to the real device holding the factory secret.
func BindProof(factorySecret, bindToken string) string {
	return hmacHex(factorySecret, "bind:"+bindToken)
}

// VerifyProof compares a received proof with the expected value in
// constant time.
func VerifyProof(got, want string) bool {
	return hmac.Equal([]byte(got), []byte(want))
}

func hmacHex(secret, message string) string {
	mac := hmac.New(sha256.New, []byte(secret))
	mac.Write([]byte(message))
	return hex.EncodeToString(mac.Sum(nil))
}
