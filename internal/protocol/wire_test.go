package protocol

import (
	"fmt"
	"testing"
)

func TestWireCodeRoundTrip(t *testing.T) {
	for _, pair := range WireCodes() {
		code, ok := WireCode(pair.Err)
		if !ok || code != pair.Code {
			t.Errorf("WireCode(%v) = %q, %v; want %q", pair.Err, code, ok, pair.Code)
		}
		// Wrapped errors still map.
		wrapped := fmt.Errorf("cloud: something: %w", pair.Err)
		code, ok = WireCode(wrapped)
		if !ok || code != pair.Code {
			t.Errorf("WireCode(wrapped %v) = %q, %v", pair.Err, code, ok)
		}
		sentinel, ok := FromWireCode(pair.Code)
		if !ok || sentinel != pair.Err {
			t.Errorf("FromWireCode(%q) = %v, %v", pair.Code, sentinel, ok)
		}
	}
}

func TestWireCodeUnknown(t *testing.T) {
	if _, ok := WireCode(fmt.Errorf("some other error")); ok {
		t.Error("non-protocol error mapped to a code")
	}
	if _, ok := FromWireCode("no_such_code"); ok {
		t.Error("unknown code mapped to an error")
	}
	if _, ok := WireCode(nil); ok {
		t.Error("nil error mapped to a code")
	}
}

func TestWireCodesAreUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, pair := range WireCodes() {
		if seen[pair.Code] {
			t.Errorf("duplicate wire code %q", pair.Code)
		}
		seen[pair.Code] = true
	}
	if len(seen) != 12 {
		t.Errorf("have %d wire codes, want 12", len(seen))
	}
}
