// Package protocol defines the wire-level messages exchanged between the
// IoT device, the user's app, and the cloud, together with the error
// vocabulary the cloud answers with. The message shapes mirror Table I and
// Figures 3-4 of the paper: status (registration/heartbeat) messages from
// the device, binding and unbinding messages from the app or the device,
// control messages from the user, and the credential-issuing requests that
// precede them.
//
// Every request type is a plain struct so it can travel both through the
// in-process transport and as JSON over the HTTP front end.
package protocol

import (
	"errors"
	"time"

	"github.com/iotbind/iotbind/internal/core"
)

// StatusKind distinguishes the two status-message flavours. Both mark the
// device online (the state machine treats them identically); clouds with
// session-tied bindings react differently to fresh registrations.
type StatusKind int

// Status kinds.
const (
	// StatusRegister is the boot-time registration message.
	StatusRegister StatusKind = iota + 1
	// StatusHeartbeat is the periodic keep-alive, optionally carrying
	// sensor readings.
	StatusHeartbeat
)

// String implements fmt.Stringer.
func (k StatusKind) String() string {
	switch k {
	case StatusRegister:
		return "register"
	case StatusHeartbeat:
		return "heartbeat"
	default:
		return "unknown"
	}
}

// Reading is one sensor sample reported by a device.
type Reading struct {
	// Name is the metric name, e.g. "power_w" or "temperature_c".
	Name string `json:"name"`
	// Value is the sample value.
	Value float64 `json:"value"`
	// At is the sample time.
	At time.Time `json:"at"`
}

// Command is a control instruction relayed from the bound user to the
// device.
type Command struct {
	// ID is a client-chosen identifier used to match acknowledgements.
	ID string `json:"id"`
	// Name is the operation, e.g. "turn_on".
	Name string `json:"name"`
	// Args carries operation parameters.
	Args map[string]string `json:"args,omitempty"`
}

// UserData is a piece of user-origin state delivered to the device, e.g. a
// smart-plug schedule. Receiving another user's UserData is the
// data-stealing half of attack A1.
type UserData struct {
	// Kind labels the payload, e.g. "schedule".
	Kind string `json:"kind"`
	// Body is the payload content.
	Body string `json:"body"`
}

// StatusRequest is a device status message (Table I: Status). Depending on
// the vendor's design it authenticates with the static device ID, a dynamic
// device token, or a factory-key signature.
type StatusRequest struct {
	// Kind is register or heartbeat.
	Kind StatusKind `json:"kind"`
	// DeviceID is the device identifier (always present; it routes the
	// message to a shadow).
	DeviceID string `json:"device_id"`
	// DevToken is the dynamic device token (AuthDevToken designs).
	DevToken string `json:"dev_token,omitempty"`
	// Signature is an HMAC over the device ID under the factory secret
	// (AuthPublicKey designs).
	Signature string `json:"signature,omitempty"`
	// SessionToken is the post-binding token (designs with
	// PostBindingToken), delivered to the device by the app after bind.
	SessionToken string `json:"session_token,omitempty"`
	// DataProof authenticates data-bearing messages in designs with
	// DataRequiresSession: an HMAC of the register-time session nonce
	// under the factory secret.
	DataProof string `json:"data_proof,omitempty"`
	// ButtonPressed reports a physical button press (opens the binding
	// window in BindButtonWindow designs).
	ButtonPressed bool `json:"button_pressed,omitempty"`
	// Firmware and Model are the attributes the device reports.
	Firmware string `json:"firmware,omitempty"`
	Model    string `json:"model,omitempty"`
	// Readings are sensor samples piggybacked on the message.
	Readings []Reading `json:"readings,omitempty"`
	// IdempotencyKey, when present, identifies this logical status message
	// across transport-level redeliveries, like BindRequest.IdempotencyKey:
	// the cloud records the response of an accepted status under the key and
	// replays it verbatim for a retried delivery, so commands drained by a
	// delivery whose response was lost are not lost with it and piggybacked
	// readings are never ingested twice. Empty disables deduplication
	// (bare online-marking is naturally idempotent). The retry layer stamps
	// keys on batched status items.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// SourceIP is the observed source address (set by the transport, not
	// the sender).
	SourceIP string `json:"-"`
}

// StatusResponse is the cloud's answer to a status message.
type StatusResponse struct {
	// Bound reports whether the device is currently bound.
	Bound bool `json:"bound"`
	// SessionNonce is issued on registration in DataRequiresSession
	// designs; data messages must prove HMAC(factorySecret, nonce).
	SessionNonce string `json:"session_nonce,omitempty"`
	// Commands are pending control instructions for the device.
	Commands []Command `json:"commands,omitempty"`
	// UserData is pending user state for the device (the data-stealing
	// target of A1).
	UserData []UserData `json:"user_data,omitempty"`
}

// BindRequest is a binding-creation message (Table I: Bind). Exactly one
// credential combination is used depending on the design: UserToken for
// app-initiated ACL binding, UserID/UserPassword for device-initiated ACL
// binding, BindToken (+BindProof) for capability binding.
type BindRequest struct {
	// DeviceID identifies the device to bind.
	DeviceID string `json:"device_id"`
	// UserToken is the app-initiated ACL credential.
	UserToken string `json:"user_token,omitempty"`
	// UserID and UserPassword are the device-initiated ACL credentials.
	UserID       string `json:"user_id,omitempty"`
	UserPassword string `json:"user_password,omitempty"`
	// BindToken is the capability credential issued by the cloud to the
	// user and delivered to the device locally.
	BindToken string `json:"bind_token,omitempty"`
	// BindProof authenticates the capability submission as coming from
	// the real device: HMAC(factorySecret, bindToken).
	BindProof string `json:"bind_proof,omitempty"`
	// Sender reports which party claims to send the message.
	Sender core.Sender `json:"sender"`
	// IdempotencyKey, when present, identifies this logical request across
	// transport-level redeliveries: the cloud records the response of an
	// accepted bind under the key and replays it verbatim for a retried
	// delivery instead of executing the binding again. Empty disables
	// deduplication.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// SourceIP is the observed source address.
	SourceIP string `json:"-"`
}

// BindResponse is the cloud's answer to an accepted binding.
type BindResponse struct {
	// BoundUser is the account now bound to the device.
	BoundUser string `json:"bound_user"`
	// SessionToken is the post-binding random token (PostBindingToken
	// designs), returned to the binder, who must present it on control
	// messages and deliver it to the device locally.
	SessionToken string `json:"session_token,omitempty"`
}

// UnbindRequest is a binding-revocation message (Table I: Unbind). An
// empty UserToken is the Type 2 form (Unbind : DevId).
type UnbindRequest struct {
	// DeviceID identifies the device to unbind.
	DeviceID string `json:"device_id"`
	// UserToken is present in the Type 1 form.
	UserToken string `json:"user_token,omitempty"`
	// Sender reports which party claims to send the message.
	Sender core.Sender `json:"sender"`
	// IdempotencyKey identifies this logical revocation across
	// redeliveries, like BindRequest.IdempotencyKey: a retried unbind
	// whose first delivery already revoked the binding reports success
	// instead of ErrNotBound. Empty disables deduplication.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// SourceIP is the observed source address.
	SourceIP string `json:"-"`
}

// ControlRequest asks the cloud to relay a command to a bound device.
type ControlRequest struct {
	DeviceID string `json:"device_id"`
	// UserToken authenticates the user.
	UserToken string `json:"user_token"`
	// SessionToken is required by PostBindingToken designs.
	SessionToken string `json:"session_token,omitempty"`
	// Command is the instruction to relay.
	Command Command `json:"command"`
	// SourceIP is the observed source address.
	SourceIP string `json:"-"`
}

// ControlResponse acknowledges a queued command.
type ControlResponse struct {
	// Queued reports that the command was accepted for relay.
	Queued bool `json:"queued"`
}

// ShareRequest grants another account guest access to a bound device
// (the many-to-one binding of Section III-B, "device sharing"). Only the
// bound owner can grant or revoke shares; guests can control the device
// and read its data but cannot unbind, share, or push state.
type ShareRequest struct {
	DeviceID string `json:"device_id"`
	// UserToken authenticates the granting owner.
	UserToken string `json:"user_token"`
	// Guest is the account receiving (or losing) access.
	Guest string `json:"guest"`
	// Revoke withdraws a previous grant instead of adding one.
	Revoke bool `json:"revoke,omitempty"`
}

// DelegateRequest creates a scoped, expiring delegation grant on a bound
// device: the grantor (the bound owner, or a grantee holding the share
// scope with re-delegation depth left) hands the grantee a subset of
// their authority. The cloud records the grant in the device's
// delegation lattice and mints a DelegationToken from it.
type DelegateRequest struct {
	DeviceID string `json:"device_id"`
	// UserToken authenticates the grantor.
	UserToken string `json:"user_token"`
	// Grantee is the account receiving the grant.
	Grantee string `json:"grantee"`
	// Scopes names the granted capabilities: "control", "read", "share".
	Scopes []string `json:"scopes"`
	// TTLSeconds bounds the grant's lifetime from the cloud's clock at
	// acceptance; zero means no expiry of its own (chain expiry still
	// applies).
	TTLSeconds int64 `json:"ttl_seconds,omitempty"`
	// Depth is the re-delegation budget handed to the grantee: how many
	// further links they may append under the grant (0 = none).
	Depth int `json:"depth,omitempty"`
	// IdempotencyKey identifies this logical grant across transport
	// redeliveries, like BindRequest.IdempotencyKey.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// DelegateResponse carries the minted delegation token.
type DelegateResponse struct {
	// DelegationToken is the scoped expiring credential minted from the
	// grant; the grantee may present it in place of a user token on
	// control and readings requests.
	DelegationToken string `json:"delegation_token"`
	// ExpiresAt is the grant's expiry (zero when the grant has none).
	ExpiresAt time.Time `json:"expires_at,omitempty"`
}

// RevokeDelegationRequest withdraws a grant. Revocation cascades: every
// grant derived from the revoked one is severed atomically with it.
type RevokeDelegationRequest struct {
	DeviceID string `json:"device_id"`
	// UserToken authenticates the revoker: the bound owner or the
	// grant's direct grantor.
	UserToken string `json:"user_token"`
	// Grantee is the account losing the grant (and, transitively, every
	// account holding a grant derived from it).
	Grantee string `json:"grantee"`
	// IdempotencyKey identifies this logical revocation across
	// redeliveries: a redelivered revoke replays its recorded outcome
	// instead of severing a grant issued after the first delivery.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// ListDelegationsRequest lists a device's delegation grants. The bound
// owner sees every grant; any other authenticated account sees only the
// grants it holds or made.
type ListDelegationsRequest struct {
	DeviceID  string `json:"device_id"`
	UserToken string `json:"user_token"`
}

// DelegationInfo is one grant as reported by ListDelegations.
type DelegationInfo struct {
	Grantor string `json:"grantor"`
	Grantee string `json:"grantee"`
	// Scopes are the granted capability names, sorted.
	Scopes []string `json:"scopes"`
	// ExpiresAt is the grant's own expiry (zero means none).
	ExpiresAt time.Time `json:"expires_at,omitempty"`
	// Depth is the grantee's remaining re-delegation budget.
	Depth int `json:"depth,omitempty"`
}

// ListDelegationsResponse carries the visible grants, sorted by grantee.
type ListDelegationsResponse struct {
	Grants []DelegationInfo `json:"grants"`
}

// SharesRequest lists a device's guests, as the owner sees them.
type SharesRequest struct {
	DeviceID  string `json:"device_id"`
	UserToken string `json:"user_token"`
}

// SharesResponse carries the guest list.
type SharesResponse struct {
	Guests []string `json:"guests"`
}

// RegisterUserRequest creates a user account.
type RegisterUserRequest struct {
	UserID   string `json:"user_id"`
	Password string `json:"password"`
}

// LoginRequest authenticates a user (password scheme, Section II-B).
type LoginRequest struct {
	UserID   string `json:"user_id"`
	Password string `json:"password"`
}

// LoginResponse carries the issued user token.
type LoginResponse struct {
	UserToken string `json:"user_token"`
}

// DeviceTokenRequest asks the cloud for a dynamic device token
// (AuthDevToken designs, Figure 3 Type 1). PairingProof demonstrates local
// possession of the device: the device reveals it over the local network
// while in setup mode, so a remote attacker cannot obtain one.
type DeviceTokenRequest struct {
	UserToken    string `json:"user_token"`
	DeviceID     string `json:"device_id"`
	PairingProof string `json:"pairing_proof"`
}

// DeviceTokenResponse carries the issued device token.
type DeviceTokenResponse struct {
	DevToken string `json:"dev_token"`
}

// BindTokenRequest asks the cloud for a capability binding token
// (Figure 4c).
type BindTokenRequest struct {
	UserToken string `json:"user_token"`
	DeviceID  string `json:"device_id"`
}

// BindTokenResponse carries the issued bind token.
type BindTokenResponse struct {
	BindToken string `json:"bind_token"`
}

// PushUserDataRequest stores user state to be delivered to the device
// (e.g. a schedule).
type PushUserDataRequest struct {
	DeviceID  string   `json:"device_id"`
	UserToken string   `json:"user_token"`
	Data      UserData `json:"data"`
}

// ReadingsRequest fetches the readings the cloud has accepted from the
// device, as the bound user sees them.
type ReadingsRequest struct {
	DeviceID  string `json:"device_id"`
	UserToken string `json:"user_token"`
}

// ReadingsResponse carries the device's reported readings.
type ReadingsResponse struct {
	Readings []Reading `json:"readings"`
}

// ShadowStateRequest inspects a device shadow (a diagnostic/evaluation
// operation, not part of any vendor API).
type ShadowStateRequest struct {
	DeviceID string `json:"device_id"`
}

// ShadowStateResponse reports the shadow's state-machine position and
// bound user.
type ShadowStateResponse struct {
	State     core.ShadowState `json:"state"`
	BoundUser string           `json:"bound_user"`
}

// Cloud error vocabulary. The HTTP front end maps these onto status codes;
// the attacker toolkit uses them to classify failures.
var (
	// ErrAuthFailed covers bad passwords, bad tokens, bad signatures and
	// bad proofs.
	ErrAuthFailed = errors.New("protocol: authentication failed")
	// ErrUnknownDevice is returned for device IDs absent from the vendor
	// registry.
	ErrUnknownDevice = errors.New("protocol: unknown device")
	// ErrAlreadyBound is returned when a bind targets a device bound to
	// another user and the design checks for it.
	ErrAlreadyBound = errors.New("protocol: device already bound")
	// ErrNotBound is returned when an operation requires a binding that
	// does not exist.
	ErrNotBound = errors.New("protocol: device not bound")
	// ErrNotPermitted is returned when the authenticated party lacks
	// permission for the operation (e.g. unbinding another user's
	// device under a checking design).
	ErrNotPermitted = errors.New("protocol: operation not permitted")
	// ErrUnsupported is returned when the vendor design does not offer
	// the requested operation (e.g. Type 2 unbind on a Type 1 cloud).
	ErrUnsupported = errors.New("protocol: operation not supported by design")
	// ErrOutsideWindow is returned when a bind misses the physical-button
	// window or fails the source-IP co-location check.
	ErrOutsideWindow = errors.New("protocol: binding window closed or co-location check failed")
	// ErrDeviceOffline is returned when a control command targets an
	// offline device.
	ErrDeviceOffline = errors.New("protocol: device offline")
	// ErrBadRequest covers malformed requests.
	ErrBadRequest = errors.New("protocol: bad request")
	// ErrPayloadTooLarge is returned when a request body exceeds a front
	// end's size limit. It is not retryable: resending the same payload
	// can never succeed.
	ErrPayloadTooLarge = errors.New("protocol: payload too large")
	// ErrUserExists is returned when registering a taken user ID.
	ErrUserExists = errors.New("protocol: user already exists")
	// ErrBackpressure is returned by the binary front end when a sender
	// overruns its advertised credit window — more requests in flight on
	// one connection than the server agreed to buffer. Well-behaved
	// clients never see it (the binapi client blocks on its credit
	// semaphore instead); receiving it means the sender is ignoring the
	// window, and the correct reaction is to drain responses before
	// sending more, not to retry blindly.
	ErrBackpressure = errors.New("protocol: connection credit window exceeded")
)
