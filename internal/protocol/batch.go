package protocol

import (
	"errors"
	"fmt"
)

// StatusBatchRequest carries many status messages in one wire round trip.
// The binding life cycle is dominated by heartbeats (Figure 2's self-loops
// vastly outnumber the six state-changing edges), so amortizing the
// per-message transport and locking cost across a batch is the cloud's
// single highest-leverage optimization. Items are applied in order; items
// for the same device are applied consecutively under one shadow lock, and
// each item succeeds or fails independently — one bad credential never
// poisons the rest of the batch.
type StatusBatchRequest struct {
	// Items are the individual status messages, in sending order.
	Items []StatusRequest `json:"items"`
	// SourceIP is the observed source address of the batch (set by the
	// transport, not the sender); the cloud applies it to every item.
	SourceIP string `json:"-"`
}

// StatusBatchResult is the outcome of one batch item: either the status
// response or a wire-coded error. Errors travel as wire codes so the
// per-item error vocabulary survives both remote front ends exactly like
// top-level errors do.
type StatusBatchResult struct {
	// Response is the item's status response, valid when Code is empty.
	Response StatusResponse `json:"response"`
	// Code is the protocol wire code of the item's error, empty on
	// success.
	Code string `json:"code,omitempty"`
	// Message is the human-readable error detail.
	Message string `json:"message,omitempty"`
}

// Err reconstructs the item's error: nil on success, the protocol
// sentinel (wrapped with the message) for known wire codes, and an opaque
// error otherwise — the same mapping the front ends apply to top-level
// errors.
func (r StatusBatchResult) Err() error {
	if r.Code == "" {
		return nil
	}
	if sentinel, ok := FromWireCode(r.Code); ok {
		return fmt.Errorf("%s: %w", r.Message, sentinel)
	}
	return fmt.Errorf("%s (%s)", r.Message, r.Code)
}

// MakeBatchResult folds a handler outcome into a transportable result.
// Errors without a wire code are carried under the "internal" code.
func MakeBatchResult(resp StatusResponse, err error) StatusBatchResult {
	if err == nil {
		return StatusBatchResult{Response: resp}
	}
	code, ok := WireCode(err)
	if !ok {
		code = "internal"
	}
	return StatusBatchResult{Code: code, Message: err.Error()}
}

// StatusBatchResponse carries the per-item outcomes, index-aligned with
// the request's Items.
type StatusBatchResponse struct {
	Results []StatusBatchResult `json:"results"`
}

// FirstError returns the first failed item's reconstructed error, joined
// with its index, or nil when every item succeeded. Callers that treat a
// batch as all-or-nothing (the device coalescer reporting a flush) use it
// to surface partial failure without losing the successful items'
// deliveries.
func (r StatusBatchResponse) FirstError() error {
	for i, res := range r.Results {
		if err := res.Err(); err != nil {
			return fmt.Errorf("batch item %d: %w", i, err)
		}
	}
	return nil
}

// ErrBatchMismatch is returned by clients when a server answers a batch
// with a result count different from the item count — a framing bug, not a
// per-item failure.
var ErrBatchMismatch = errors.New("protocol: batch result count mismatch")
