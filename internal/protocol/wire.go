package protocol

import "errors"

// Stable wire codes for the protocol error vocabulary, shared by every
// remote front end (HTTP and raw TCP) so errors survive serialization and
// errors.Is keeps working across process boundaries.
var wireCodes = []struct {
	err  error
	code string
}{
	{ErrAuthFailed, "auth_failed"},
	{ErrUnknownDevice, "unknown_device"},
	{ErrAlreadyBound, "already_bound"},
	{ErrNotBound, "not_bound"},
	{ErrNotPermitted, "not_permitted"},
	{ErrUnsupported, "unsupported"},
	{ErrOutsideWindow, "outside_window"},
	{ErrDeviceOffline, "device_offline"},
	{ErrUserExists, "user_exists"},
	{ErrPayloadTooLarge, "payload_too_large"},
	{ErrBackpressure, "wire_backpressure"},
	{ErrBadRequest, "bad_request"},
}

// WireCode returns the stable code for a protocol sentinel error wrapped
// anywhere in err's chain, or ok=false for non-protocol errors.
func WireCode(err error) (code string, ok bool) {
	for _, c := range wireCodes {
		if errors.Is(err, c.err) {
			return c.code, true
		}
	}
	return "", false
}

// FromWireCode returns the sentinel error a wire code stands for.
func FromWireCode(code string) (error, bool) {
	for _, c := range wireCodes {
		if c.code == code {
			return c.err, true
		}
	}
	return nil, false
}

// WireCodes lists every (error, code) pair, for front ends that need to
// attach extra metadata (e.g. HTTP status codes).
func WireCodes() []struct {
	Err  error
	Code string
} {
	out := make([]struct {
		Err  error
		Code string
	}, 0, len(wireCodes))
	for _, c := range wireCodes {
		out = append(out, struct {
			Err  error
			Code string
		}{c.err, c.code})
	}
	return out
}
