// Package vendors encodes the ten real-world remote-binding solutions the
// paper evaluates (Table III) as design specs for the emulation, together
// with the paper's published attack results for each, plus the reference
// designs the paper discusses (the capability-based secure baseline, the
// recommended dynamic-token practice, and a worst-case strawman).
//
// Each profile captures exactly the design facts Table III and Section VI
// report: the device-authentication column, who sends the binding message,
// the supported unbinding forms, and the cloud-side policy behaviours
// inferred from the attack outcomes (e.g. device #5's missing bound-user
// check on unbind, device #9's replace-without-check binding). Where the
// paper could not confirm a detail (firmware-opaque products), the profile
// records that and an assumed internal mode consistent with the published
// outcomes.
package vendors

import (
	"fmt"

	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/devid"
)

// IDScheme describes how a vendor assigns device IDs, with the parameters
// needed to build a devid.Generator.
type IDScheme struct {
	// Scheme is the generation scheme.
	Scheme devid.Scheme
	// OUI is the vendor MAC prefix (SchemeMAC).
	OUI string
	// Prefix and Digits shape serial numbers (SchemeSequentialSerial).
	Prefix string
	Digits int
	// Shipped bounds the sequential search space (SchemeSequentialSerial).
	Shipped uint64
	// Seed seeds random IDs (SchemeRandom128).
	Seed uint64
}

// Generator builds the devid.Generator for the scheme.
func (s IDScheme) Generator() (devid.Generator, error) {
	switch s.Scheme {
	case devid.SchemeMAC:
		oui, err := devid.VendorOUI(s.OUI)
		if err != nil {
			return nil, fmt.Errorf("vendors: %w", err)
		}
		return devid.NewMACGenerator(oui), nil
	case devid.SchemeSequentialSerial:
		gen, err := devid.NewSerialGenerator(s.Prefix, s.Digits, s.Shipped)
		if err != nil {
			return nil, fmt.Errorf("vendors: %w", err)
		}
		return gen, nil
	case devid.SchemeShortDigits:
		gen, err := devid.NewShortDigitsGenerator(s.Digits)
		if err != nil {
			return nil, fmt.Errorf("vendors: %w", err)
		}
		return gen, nil
	case devid.SchemeRandom128:
		return devid.NewRandomGenerator(s.Seed), nil
	default:
		return nil, fmt.Errorf("vendors: unknown ID scheme %v", s.Scheme)
	}
}

// PaperRow is one vendor's published attack results (Table III).
type PaperRow struct {
	// A1 is the data injection/stealing cell (✓, ✗, or O).
	A1 core.Outcome
	// A2 is the binding denial-of-service cell (✓ or ✗).
	A2 core.Outcome
	// A3 lists the device-unbinding variants that succeeded (empty = ✗).
	A3 []core.AttackVariant
	// A4 lists the device-hijacking variants that succeeded (empty = ✗).
	A4 []core.AttackVariant
}

// Profile is one evaluated product: its design, ID scheme, and the paper's
// published results.
type Profile struct {
	// Number is the Table III row number (1-10); 0 for reference designs.
	Number int
	// Vendor is the vendor name.
	Vendor string
	// DeviceType is the product category.
	DeviceType string
	// Design is the remote-binding design the emulation enforces.
	Design core.DesignSpec
	// IDs is the vendor's device-ID scheme.
	IDs IDScheme
	// LabelOnDevice reports whether the device ID is printed on the
	// device or its packaging (6 of the 10 products).
	LabelOnDevice bool
	// Paper is the published Table III row (zero value for reference
	// designs that the paper did not evaluate as products).
	Paper PaperRow
}

// Profiles returns the ten Table III products in row order.
func Profiles() []Profile {
	return []Profile{
		{
			Number: 1, Vendor: "Belkin", DeviceType: "Smart Plug",
			Design: core.DesignSpec{
				Name:                 "belkin-wemo",
				DeviceAuth:           core.AuthDevToken,
				Binding:              core.BindACLApp,
				UnbindForms:          []core.UnbindForm{core.UnbindDevIDUserToken},
				CheckBoundUserOnBind: true,
				// The missing bound-user check on unbind is the A3-2
				// flaw the paper demonstrates on this product.
				CheckBoundUserOnUnbind: false,
			},
			IDs:           IDScheme{Scheme: devid.SchemeMAC, OUI: "B4:75:0E"},
			LabelOnDevice: true,
			Paper: PaperRow{
				A1: core.OutcomeFailed,
				A2: core.OutcomeSucceeded,
				A3: []core.AttackVariant{core.VariantA3x2},
			},
		},
		{
			Number: 2, Vendor: "BroadLink", DeviceType: "Smart Plug",
			Design: core.DesignSpec{
				Name:                   "broadlink-sp",
				DeviceAuth:             core.AuthUnknown,
				AssumedAuth:            core.AuthDevToken,
				Binding:                core.BindACLApp,
				UnbindForms:            []core.UnbindForm{core.UnbindDevIDUserToken},
				CheckBoundUserOnBind:   true,
				CheckBoundUserOnUnbind: true,
				FirmwareOpaque:         true,
			},
			IDs:           IDScheme{Scheme: devid.SchemeMAC, OUI: "34:EA:34"},
			LabelOnDevice: true,
			Paper: PaperRow{
				A1: core.OutcomeUnconfirmed,
				A2: core.OutcomeSucceeded,
			},
		},
		{
			Number: 3, Vendor: "KONKE", DeviceType: "Smart Socket",
			Design: core.DesignSpec{
				Name:       "konke-mini",
				DeviceAuth: core.AuthDevToken,
				Binding:    core.BindACLApp,
				// No unbinding operation at all: a new binding replaces
				// the previous one (Section IV-C Type 3), with the
				// post-binding token as the partial defence that keeps
				// replacement from becoming hijacking.
				UnbindForms:          []core.UnbindForm{core.UnbindReplaceByBind},
				ReplaceOnBind:        true,
				PostBindingToken:     true,
				CheckBoundUserOnBind: false,
			},
			IDs:           IDScheme{Scheme: devid.SchemeSequentialSerial, Prefix: "KK", Digits: 8, Shipped: 500_000},
			LabelOnDevice: true,
			Paper: PaperRow{
				A1: core.OutcomeFailed,
				A2: core.OutcomeFailed,
				A3: []core.AttackVariant{core.VariantA3x3},
			},
		},
		{
			Number: 4, Vendor: "Lightstory", DeviceType: "Smart Plug",
			Design: core.DesignSpec{
				Name:                   "lightstory-plug",
				DeviceAuth:             core.AuthDevToken,
				Binding:                core.BindACLApp,
				UnbindForms:            []core.UnbindForm{core.UnbindDevIDUserToken},
				CheckBoundUserOnBind:   true,
				CheckBoundUserOnUnbind: true,
			},
			IDs: IDScheme{Scheme: devid.SchemeSequentialSerial, Prefix: "LS", Digits: 7, Shipped: 200_000},
			Paper: PaperRow{
				A1: core.OutcomeFailed,
				A2: core.OutcomeSucceeded,
			},
		},
		{
			Number: 5, Vendor: "Orvibo", DeviceType: "Smart Plug",
			Design: core.DesignSpec{
				Name:                   "orvibo-wiwo",
				DeviceAuth:             core.AuthUnknown,
				AssumedAuth:            core.AuthDevToken,
				Binding:                core.BindACLApp,
				UnbindForms:            []core.UnbindForm{core.UnbindDevIDUserToken},
				CheckBoundUserOnBind:   true,
				CheckBoundUserOnUnbind: false,
				FirmwareOpaque:         true,
			},
			IDs:           IDScheme{Scheme: devid.SchemeMAC, OUI: "AC:CF:23"},
			LabelOnDevice: true,
			Paper: PaperRow{
				A1: core.OutcomeUnconfirmed,
				A2: core.OutcomeSucceeded,
				A3: []core.AttackVariant{core.VariantA3x2},
			},
		},
		{
			Number: 6, Vendor: "OZWI", DeviceType: "IP Camera",
			Design: core.DesignSpec{
				Name:                   "ozwi-cam",
				DeviceAuth:             core.AuthDevID,
				Binding:                core.BindACLApp,
				UnbindForms:            []core.UnbindForm{core.UnbindDevIDUserToken},
				CheckBoundUserOnBind:   true,
				CheckBoundUserOnUnbind: true,
				// The camera connects to the cloud before any binding
				// exists, exposing the setup window A4-2 exploits.
				OnlineBeforeBind: true,
				FirmwareOpaque:   true,
			},
			IDs:           IDScheme{Scheme: devid.SchemeShortDigits, Digits: 7},
			LabelOnDevice: true,
			Paper: PaperRow{
				A1: core.OutcomeUnconfirmed,
				A2: core.OutcomeSucceeded,
				A4: []core.AttackVariant{core.VariantA4x2},
			},
		},
		{
			Number: 7, Vendor: "Philips Hue", DeviceType: "Smart Bulb",
			Design: core.DesignSpec{
				Name:                   "philips-hue",
				DeviceAuth:             core.AuthUnknown,
				AssumedAuth:            core.AuthDevToken,
				Binding:                core.BindACLApp,
				UnbindForms:            []core.UnbindForm{core.UnbindDevIDUserToken},
				CheckBoundUserOnBind:   true,
				CheckBoundUserOnUnbind: true,
				// Binding requires a physical button press within 30
				// seconds, and the cloud compares the source IPs of the
				// device's registration and the user's bind request
				// (Section VI-B).
				BindButtonWindow: true,
				SourceIPCheck:    true,
				OnlineBeforeBind: true,
				FirmwareOpaque:   true,
			},
			IDs: IDScheme{Scheme: devid.SchemeSequentialSerial, Prefix: "HUE", Digits: 9, Shipped: 2_000_000},
			Paper: PaperRow{
				A1: core.OutcomeUnconfirmed,
				A2: core.OutcomeFailed,
			},
		},
		{
			Number: 8, Vendor: "TP-LINK", DeviceType: "Smart Bulb",
			Design: core.DesignSpec{
				Name:       "tplink-lb",
				DeviceAuth: core.AuthDevID,
				// The only device-initiated binding in the corpus: the
				// user credential travels through the device.
				Binding: core.BindACLDevice,
				UnbindForms: []core.UnbindForm{
					core.UnbindDevIDUserToken,
					core.UnbindDevIDAlone, // the A3-1 flaw
				},
				CheckBoundUserOnBind:   true,
				CheckBoundUserOnUnbind: true,
				// Boot registrations are forgeable from static firmware
				// analysis and the cloud treats them as resets (A3-4),
				// but in-session data traffic is protected, so A1 fails.
				SessionTiedBinding:  true,
				DataRequiresSession: true,
				// Normal setup factory-resets the bulb, emitting the
				// device-sent unbind that clears any squatting binding.
				ResetUnbindsOnSetup: true,
			},
			IDs:           IDScheme{Scheme: devid.SchemeMAC, OUI: "50:C7:BF"},
			LabelOnDevice: true,
			Paper: PaperRow{
				A1: core.OutcomeFailed,
				A2: core.OutcomeFailed,
				A3: []core.AttackVariant{core.VariantA3x1, core.VariantA3x4},
				A4: []core.AttackVariant{core.VariantA4x3},
			},
		},
		{
			Number: 9, Vendor: "E-Link Smart", DeviceType: "IP Camera",
			Design: core.DesignSpec{
				Name:        "elink-cam",
				DeviceAuth:  core.AuthDevID,
				Binding:     core.BindACLApp,
				UnbindForms: []core.UnbindForm{core.UnbindDevIDUserToken},
				// The cloud manipulates existing bindings without
				// checking the sender against the bound user — the A4-1
				// implementation flaw.
				CheckBoundUserOnBind:   false,
				CheckBoundUserOnUnbind: true,
				FirmwareOpaque:         true,
			},
			IDs: IDScheme{Scheme: devid.SchemeShortDigits, Digits: 6},
			Paper: PaperRow{
				A1: core.OutcomeUnconfirmed,
				A2: core.OutcomeFailed,
				A4: []core.AttackVariant{core.VariantA4x1},
			},
		},
		{
			Number: 10, Vendor: "D-LINK", DeviceType: "Smart Plug",
			Design: core.DesignSpec{
				Name:                   "dlink-dsp",
				DeviceAuth:             core.AuthDevID,
				Binding:                core.BindACLApp,
				UnbindForms:            []core.UnbindForm{core.UnbindDevIDUserToken},
				CheckBoundUserOnBind:   true,
				CheckBoundUserOnUnbind: true,
			},
			IDs:           IDScheme{Scheme: devid.SchemeMAC, OUI: "28:10:7B"},
			LabelOnDevice: true,
			Paper: PaperRow{
				A1: core.OutcomeSucceeded,
				A2: core.OutcomeSucceeded,
			},
		},
	}
}

// SecureReference is the capability-based baseline the paper recommends
// (Samsung SmartThings / ARTIK style): a bind token that must round-trip
// through the physical device, with per-device keys for authentication.
func SecureReference() Profile {
	return Profile{
		Vendor: "Reference", DeviceType: "Capability baseline",
		Design: core.DesignSpec{
			Name:                       "reference-capability",
			DeviceAuth:                 core.AuthPublicKey,
			Binding:                    core.BindCapability,
			UnbindForms:                []core.UnbindForm{core.UnbindDevIDUserToken},
			CheckBoundUserOnBind:       true,
			CheckBoundUserOnUnbind:     true,
			DelegationScopeAttenuation: true,
			DelegationCascadeRevoke:    true,
			DelegationCheckAtUse:       true,
		},
		IDs: IDScheme{Scheme: devid.SchemeRandom128, Seed: 0x5eed},
	}
}

// RecommendedPractice is the design the paper's assessments recommend for
// resource-constrained devices: dynamic device tokens obtained through the
// user (Section IV-A) combined with capability-based binding authorization
// (Section IV-B) — an app-initiated ACL bind with a DevToken alone still
// leaves binding denial-of-service open, because any account can squat on
// a leaked device ID first.
func RecommendedPractice() Profile {
	return Profile{
		Vendor: "Reference", DeviceType: "DevToken + capability practice",
		Design: core.DesignSpec{
			Name:                       "reference-devtoken",
			DeviceAuth:                 core.AuthDevToken,
			Binding:                    core.BindCapability,
			UnbindForms:                []core.UnbindForm{core.UnbindDevIDUserToken},
			CheckBoundUserOnBind:       true,
			CheckBoundUserOnUnbind:     true,
			DelegationScopeAttenuation: true,
			DelegationCascadeRevoke:    true,
			DelegationCheckAtUse:       true,
		},
		IDs: IDScheme{Scheme: devid.SchemeRandom128, Seed: 0xcafe},
	}
}

// WorstCase is a strawman that combines every flawed choice the paper
// observed: static-ID authentication, no authorization checks, a
// device-ID-only unbind, and replace-on-bind semantics. The analyzer
// derives the full Table II attack surface from it.
func WorstCase() Profile {
	return Profile{
		Vendor: "Reference", DeviceType: "Worst case",
		Design: core.DesignSpec{
			Name:       "reference-worst",
			DeviceAuth: core.AuthDevID,
			Binding:    core.BindACLApp,
			UnbindForms: []core.UnbindForm{
				core.UnbindDevIDUserToken,
				core.UnbindDevIDAlone,
			},
			SessionTiedBinding: false,
			ReplaceOnBind:      true,
			OnlineBeforeBind:   true,
		},
		IDs: IDScheme{Scheme: devid.SchemeShortDigits, Digits: 6},
	}
}

// ByVendor returns the Table III profile with the given vendor name.
func ByVendor(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Vendor == name {
			return p, true
		}
	}
	return Profile{}, false
}
