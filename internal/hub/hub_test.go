package hub_test

import (
	"errors"
	"strings"
	"testing"

	"github.com/iotbind/iotbind/internal/app"
	"github.com/iotbind/iotbind/internal/attacker"
	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/device"
	"github.com/iotbind/iotbind/internal/hub"
	"github.com/iotbind/iotbind/internal/localnet"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
)

const (
	hubID     = "AA:BB:CC:00:08:01"
	hubSecret = "factory-secret-hub"
)

// tpLinkLike is the device #8 design — the one whose hijack we amplify
// through the hub.
func tpLinkLike() core.DesignSpec {
	p := core.DesignSpec{
		Name:       "hub-tplink",
		DeviceAuth: core.AuthDevID,
		Binding:    core.BindACLDevice,
		UnbindForms: []core.UnbindForm{
			core.UnbindDevIDUserToken, core.UnbindDevIDAlone,
		},
		CheckBoundUserOnBind:   true,
		CheckBoundUserOnUnbind: true,
		SessionTiedBinding:     true,
		DataRequiresSession:    true,
		ResetUnbindsOnSetup:    true,
	}
	return p
}

type rig struct {
	svc    *cloud.Service
	home   *localnet.Network
	h      *hub.Hub
	victim *app.App
}

type hubActions struct{ h *hub.Hub }

func (a hubActions) PressButton(string) error { return a.h.Device().PressButton() }
func (a hubActions) ResetDevice(string) error { a.h.Device().Reset(); return nil }

func newRig(t *testing.T, design core.DesignSpec) *rig {
	t.Helper()
	reg := cloud.NewRegistry()
	if err := reg.Add(cloud.DeviceRecord{ID: hubID, FactorySecret: hubSecret, Model: "hub"}); err != nil {
		t.Fatal(err)
	}
	svc, err := cloud.NewService(design, reg)
	if err != nil {
		t.Fatal(err)
	}
	home := localnet.NewNetwork("home", "203.0.113.7")
	homeTransport := transport.StampSource(svc, home.PublicIP())

	h, err := hub.New(device.Config{
		ID: hubID, FactorySecret: hubSecret, LocalName: "hub-1", Model: "hub",
	}, design, homeTransport)
	if err != nil {
		t.Fatal(err)
	}
	if err := home.Join(h.Device()); err != nil {
		t.Fatal(err)
	}

	victim, err := app.New("victim@example.com", "pw", design, homeTransport, home)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.RegisterAccount(); err != nil {
		t.Fatal(err)
	}
	if err := victim.Login(); err != nil {
		t.Fatal(err)
	}
	return &rig{svc: svc, home: home, h: h, victim: victim}
}

func pairThree(t *testing.T, h *hub.Hub) []*hub.SubDevice {
	t.Helper()
	h.PermitJoin(true)
	defer h.PermitJoin(false)
	subs := []*hub.SubDevice{
		hub.NewSubDevice("door-1", "contact"),
		hub.NewSubDevice("temp-1", "thermometer"),
		hub.NewSubDevice("lock-1", "lock"),
	}
	for _, s := range subs {
		if err := h.Pair(s); err != nil {
			t.Fatal(err)
		}
	}
	return subs
}

func TestPairingWindow(t *testing.T) {
	r := newRig(t, tpLinkLike())
	s := hub.NewSubDevice("door-1", "contact")
	if err := r.h.Pair(s); !errors.Is(err, hub.ErrJoinClosed) {
		t.Errorf("pair outside window = %v, want ErrJoinClosed", err)
	}
	r.h.PermitJoin(true)
	if err := r.h.Pair(s); err != nil {
		t.Fatal(err)
	}
	if err := r.h.Pair(hub.NewSubDevice("door-1", "contact")); !errors.Is(err, hub.ErrDuplicateSub) {
		t.Errorf("duplicate pair = %v, want ErrDuplicateSub", err)
	}
	if got := r.h.Subs(); len(got) != 1 || got[0] != "door-1" {
		t.Errorf("Subs() = %v", got)
	}
	r.h.Unpair("door-1")
	r.h.Unpair("door-1") // idempotent
	if len(r.h.Subs()) != 0 {
		t.Error("Unpair left the node behind")
	}
}

// TestFourPartyLifecycle runs the full flow: hub setup via the app,
// sub-device pairing, sensor fan-in and command fan-out.
func TestFourPartyLifecycle(t *testing.T) {
	r := newRig(t, tpLinkLike())
	subs := pairThree(t, r.h)

	if err := r.victim.SetupDevice("hub-1", hubActions{h: r.h}); err != nil {
		t.Fatal(err)
	}

	// Fan-in: sub-device readings reach the user, namespaced.
	subs[1].Report("temperature_c", 21.5)
	if err := r.h.Sync(); err != nil {
		t.Fatal(err)
	}
	readings, err := r.victim.Readings(hubID)
	if err != nil {
		t.Fatal(err)
	}
	if len(readings) != 1 || readings[0].Name != "temp-1/temperature_c" || readings[0].Value != 21.5 {
		t.Errorf("readings = %+v", readings)
	}

	// Fan-out: a targeted command reaches exactly its node.
	if err := r.victim.Control(hubID, protocol.Command{
		ID: "c1", Name: "lock",
		Args: map[string]string{hub.TargetArg: "lock-1"},
	}); err != nil {
		t.Fatal(err)
	}
	// An untargeted command stays on the hub.
	if err := r.victim.Control(hubID, protocol.Command{ID: "c2", Name: "identify"}); err != nil {
		t.Fatal(err)
	}
	if err := r.h.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := subs[2].Executed(); len(got) != 1 || got[0].Name != "lock" {
		t.Errorf("lock-1 executed %+v", got)
	}
	if got := subs[0].Executed(); len(got) != 0 {
		t.Errorf("door-1 executed %+v, want nothing", got)
	}
	if got := r.h.HubExecuted(); len(got) != 1 || got[0].ID != "c2" {
		t.Errorf("hub executed %+v", got)
	}
}

func TestUnknownTargetReported(t *testing.T) {
	r := newRig(t, tpLinkLike())
	pairThree(t, r.h)
	if err := r.victim.SetupDevice("hub-1", hubActions{h: r.h}); err != nil {
		t.Fatal(err)
	}
	if err := r.victim.Control(hubID, protocol.Command{
		ID: "c1", Name: "x", Args: map[string]string{hub.TargetArg: "ghost"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.h.Sync(); !errors.Is(err, hub.ErrUnknownSub) {
		t.Errorf("Sync with ghost target = %v, want ErrUnknownSub", err)
	}
}

// TestHubHijackAmplification is the four-party security result: the A4-3
// chain against the hub's binding hands the attacker every sub-device at
// once, and a single forged status exfiltrates the whole home's pending
// data.
func TestHubHijackAmplification(t *testing.T) {
	design := tpLinkLike()
	r := newRig(t, design)
	subs := pairThree(t, r.h)

	if err := r.victim.SetupDevice("hub-1", hubActions{h: r.h}); err != nil {
		t.Fatal(err)
	}

	lair := localnet.NewNetwork("lair", "198.51.100.66")
	atk, err := attacker.New("attacker@example.com", "pw", design,
		transport.StampSource(r.svc, lair.PublicIP()))
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.Prepare(); err != nil {
		t.Fatal(err)
	}

	// The A4-3 chain against the hub identity.
	if err := atk.ForgeUnbind(hubID, core.UnbindDevIDAlone); err != nil {
		t.Fatal(err)
	}
	if _, err := atk.ForgeBind(hubID); err != nil {
		t.Fatal(err)
	}

	// One hijacked binding, three compromised devices.
	for i, name := range []string{"door-1", "temp-1", "lock-1"} {
		if err := atk.Control(hubID, protocol.Command{
			ID: "evil-" + name, Name: "actuate",
			Args: map[string]string{hub.TargetArg: name},
		}); err != nil {
			t.Fatalf("attacker control %s: %v", name, err)
		}
		_ = i
	}
	if err := r.h.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, s := range subs {
		got := s.Executed()
		if len(got) != 1 || !strings.HasPrefix(got[i%1].ID, "evil-") {
			t.Errorf("%s executed %+v, want the attacker's command", s.Name(), got)
		}
	}

	// The victim is locked out.
	if err := r.victim.Control(hubID, protocol.Command{ID: "v", Name: "noop"}); err == nil {
		t.Error("victim still has control after hub hijack")
	}
}

func TestSyncReturnsCloudRejection(t *testing.T) {
	design := tpLinkLike()
	r := newRig(t, design)
	pairThree(t, r.h)
	if err := r.victim.SetupDevice("hub-1", hubActions{h: r.h}); err != nil {
		t.Fatal(err)
	}

	// Forge a registration (A3-4): the cloud drops the binding and the
	// session; the hub's next data sync must surface the rejection.
	lair := localnet.NewNetwork("lair", "198.51.100.66")
	atk, err := attacker.New("attacker@example.com", "pw", design,
		transport.StampSource(r.svc, lair.PublicIP()))
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.Prepare(); err != nil {
		t.Fatal(err)
	}
	if _, err := atk.ForgeStatus(hubID, protocol.StatusRegister, nil); err != nil {
		t.Fatal(err)
	}

	st, err := r.svc.ShadowState(protocol.ShadowStateRequest{DeviceID: hubID})
	if err != nil {
		t.Fatal(err)
	}
	if st.BoundUser != "" {
		t.Fatalf("binding survived the forged registration: %+v", st)
	}
}

func TestSubDeviceAccessors(t *testing.T) {
	s := hub.NewSubDevice("door-1", "contact")
	if s.Name() != "door-1" || s.Kind() != "contact" {
		t.Error("accessors wrong")
	}
	s.Report("open", 1)
	if len(s.Executed()) != 0 {
		t.Error("fresh node has executed commands")
	}
}
