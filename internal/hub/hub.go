// Package hub implements the four-party communication architecture the
// paper's discussion raises as an open extension (Section VIII): low-power
// Zigbee/Bluetooth end nodes that have no IP connectivity of their own and
// reach the cloud through an IP hub. The hub is the "device" in the
// cloud's eyes — it authenticates, binds and heartbeats exactly like any
// other device agent — while bridging a personal-area network of
// sub-devices.
//
// The security consequence the package makes measurable: the remote
// binding binds the hub, so every attack on the hub's binding is
// amplified across all paired sub-devices. Hijacking one hub identity
// yields control of every sensor and actuator behind it; a forged hub
// status message exfiltrates the data of the whole home.
package hub

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/device"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
)

// Errors returned by the hub.
var (
	// ErrJoinClosed is returned when pairing is attempted outside a
	// permit-join window.
	ErrJoinClosed = errors.New("hub: pairing window closed (call PermitJoin first)")
	// ErrDuplicateSub is returned when a sub-device name is taken.
	ErrDuplicateSub = errors.New("hub: sub-device name already paired")
	// ErrUnknownSub is returned when routing targets a sub-device that
	// is not paired.
	ErrUnknownSub = errors.New("hub: unknown sub-device")
)

// TargetArg is the command argument naming the sub-device a command is
// routed to. Commands without it address the hub itself.
const TargetArg = "target"

// SubDevice is one low-power end node on the hub's personal-area network.
// It has no cloud identity: its readings and commands travel via the hub.
type SubDevice struct {
	mu       sync.Mutex
	name     string
	kind     string
	pending  []protocol.Reading
	executed []protocol.Command
	now      func() time.Time
}

// NewSubDevice creates an end node, e.g. NewSubDevice("door-1", "contact").
func NewSubDevice(name, kind string) *SubDevice {
	return &SubDevice{name: name, kind: kind, now: time.Now}
}

// Name returns the node's PAN name.
func (s *SubDevice) Name() string { return s.name }

// Kind returns the node category.
func (s *SubDevice) Kind() string { return s.kind }

// Report queues a sensor sample for the hub's next collection.
func (s *SubDevice) Report(metric string, value float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = append(s.pending, protocol.Reading{Name: metric, Value: value, At: s.now()})
}

// Executed returns the commands the node has executed.
func (s *SubDevice) Executed() []protocol.Command {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]protocol.Command, len(s.executed))
	copy(out, s.executed)
	return out
}

// collect drains the node's pending samples, prefixing the metric with
// the node name.
func (s *SubDevice) collect() []protocol.Reading {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]protocol.Reading, 0, len(s.pending))
	for _, r := range s.pending {
		r.Name = s.name + "/" + r.Name
		out = append(out, r)
	}
	s.pending = nil
	return out
}

// execute delivers a routed command to the node.
func (s *SubDevice) execute(cmd protocol.Command) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.executed = append(s.executed, cmd)
}

// Hub bridges a personal-area network of SubDevices to the cloud through
// an ordinary device agent.
// The hub lock guards only the PAN roster and routing bookkeeping; each
// SubDevice carries its own lock, so collection and command execution
// fan out per node without holding the hub-wide lock. Readers of the
// roster (Sync, Subs, HubExecuted) take the lock shared.
type Hub struct {
	dev *device.Device

	mu         sync.RWMutex
	subs       map[string]*SubDevice
	permitJoin bool
	routed     int // how many hub-executed commands have been routed
	hubCmds    []protocol.Command
}

// New creates a hub whose cloud-facing behaviour follows the given design.
// The returned hub's Device() joins local networks and is set up by the
// app exactly like a standalone device.
func New(cfg device.Config, design core.DesignSpec, cloud transport.Cloud, opts ...device.Option) (*Hub, error) {
	dev, err := device.New(cfg, design, cloud, opts...)
	if err != nil {
		return nil, fmt.Errorf("hub: %w", err)
	}
	return &Hub{dev: dev, subs: make(map[string]*SubDevice)}, nil
}

// Device returns the hub's cloud/LAN-facing device agent.
func (h *Hub) Device() *device.Device { return h.dev }

// PermitJoin opens or closes the PAN pairing window (the physical pairing
// button on real hubs).
func (h *Hub) PermitJoin(open bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.permitJoin = open
}

// Pair joins an end node to the hub's PAN. The pairing window must be
// open — PAN pairing is a local, physical-proximity act, which is exactly
// why the remote adversary cannot inject sub-devices.
func (h *Hub) Pair(s *SubDevice) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.permitJoin {
		return ErrJoinClosed
	}
	if _, exists := h.subs[s.Name()]; exists {
		return fmt.Errorf("%w: %q", ErrDuplicateSub, s.Name())
	}
	h.subs[s.Name()] = s
	return nil
}

// Unpair removes an end node; unknown names are a no-op.
func (h *Hub) Unpair(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, name)
}

// Subs lists the paired node names, sorted.
func (h *Hub) Subs() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	names := make([]string, 0, len(h.subs))
	for name := range h.subs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// HubExecuted returns the commands addressed to the hub itself.
func (h *Hub) HubExecuted() []protocol.Command {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]protocol.Command, len(h.hubCmds))
	copy(out, h.hubCmds)
	return out
}

// Sync performs one bridge cycle: collect every node's readings into the
// hub's uplink queue, heartbeat the cloud, and route freshly delivered
// commands to their target nodes. A Sync with a rejected heartbeat (e.g.
// the hub's binding was replaced) returns the cloud error; nothing is
// routed.
func (h *Hub) Sync() error {
	h.mu.RLock()
	subs := make([]*SubDevice, 0, len(h.subs))
	for _, s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.RUnlock()

	for _, s := range subs {
		for _, r := range s.collect() {
			h.dev.QueueReading(r.Name, r.Value)
		}
	}

	if err := h.dev.Heartbeat(); err != nil {
		return fmt.Errorf("hub: %w", err)
	}

	return h.routeNewCommands()
}

// routeNewCommands dispatches commands the device agent received since the
// last sync. Commands with an unknown target are dropped with an error
// (the real device logs and ignores them).
func (h *Hub) routeNewCommands() error {
	// ExecutedSince copies only the commands delivered since the last
	// sync, so a long-lived hub never re-copies its full history. The
	// cursor advances under the hub lock, which keeps concurrent syncs
	// from routing the same command twice; device locks nest inside hub
	// locks, never the other way.
	h.mu.Lock()
	fresh := h.dev.ExecutedSince(h.routed)
	h.routed += len(fresh)
	subs := make(map[string]*SubDevice, len(h.subs))
	for name, s := range h.subs {
		subs[name] = s
	}
	h.mu.Unlock()

	var firstErr error
	var forHub []protocol.Command
	for _, cmd := range fresh {
		target := cmd.Args[TargetArg]
		if target == "" {
			forHub = append(forHub, cmd)
			continue
		}
		s, ok := subs[target]
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: %q", ErrUnknownSub, target)
			}
			continue
		}
		s.execute(cmd)
	}
	if len(forHub) > 0 {
		h.mu.Lock()
		h.hubCmds = append(h.hubCmds, forHub...)
		h.mu.Unlock()
	}
	return firstErr
}
