package testbed

import (
	"testing"
)

// TestRunClusterLoadKillover is the issue's acceptance scenario: three
// nodes, two mid-run primary kills, ack-after-replicate — the merged
// final state must be byte-identical to the single-node reference and
// no acknowledged operation may be lost.
func TestRunClusterLoadKillover(t *testing.T) {
	res, err := RunClusterLoad(ClusterLoadConfig{
		Dir:               t.TempDir(),
		Nodes:             3,
		Devices:           12,
		Heartbeats:        8,
		ReadingEvery:      3,
		Workers:           4,
		Kills:             2,
		AckAfterReplicate: true,
	})
	if err != nil {
		t.Fatalf("RunClusterLoad: %v", err)
	}
	if !res.StateVerified {
		t.Fatal("state compare did not run")
	}
	if res.MaxLostAcked != 0 {
		t.Fatalf("lost %d acked operations under ack-after-replicate", res.MaxLostAcked)
	}
	if res.Kills != 2 || res.Promotions != 2 {
		t.Fatalf("kills/promotions = %d/%d, want 2/2", res.Kills, res.Promotions)
	}
	wantMsgs := 12*8 + 12*2 // heartbeats + 2 batches covering each worker slice
	if res.Messages != wantMsgs {
		t.Fatalf("Messages = %d, want %d", res.Messages, wantMsgs)
	}
	if res.Binds != 12 {
		t.Fatalf("Binds = %d, want 12", res.Binds)
	}
}

// TestRunClusterLoadNoKills exercises the steady-state path: every node
// survives, and the merged compare must still hold (routing alone must
// not perturb state).
func TestRunClusterLoadNoKills(t *testing.T) {
	res, err := RunClusterLoad(ClusterLoadConfig{
		Dir:               t.TempDir(),
		Nodes:             3,
		Devices:           9,
		Heartbeats:        4,
		Workers:           3,
		Kills:             0,
		AckAfterReplicate: true,
	})
	if err != nil {
		t.Fatalf("RunClusterLoad: %v", err)
	}
	if !res.StateVerified || res.Kills != 0 {
		t.Fatalf("StateVerified=%v Kills=%d, want true/0", res.StateVerified, res.Kills)
	}
}

// TestRunClusterLoadAsyncShipping documents the contrast case the
// ack-after-replicate knob exists for: with asynchronous shipping a kill
// may strand acknowledged operations on the dead primary's disk, so the
// run reports the loss instead of verifying state.
func TestRunClusterLoadAsyncShipping(t *testing.T) {
	res, err := RunClusterLoad(ClusterLoadConfig{
		Dir:               t.TempDir(),
		Nodes:             3,
		Devices:           9,
		Heartbeats:        6,
		Workers:           3,
		Kills:             1,
		AckAfterReplicate: false,
	})
	if err != nil {
		t.Fatalf("RunClusterLoad: %v", err)
	}
	if res.StateVerified {
		t.Fatal("async run must not claim a verified state")
	}
	if len(res.LostAcked) != 1 {
		t.Fatalf("LostAcked = %v, want one entry", res.LostAcked)
	}
	// The killed node had served register+bind+heartbeats for its slice
	// with nothing shipping; unless its slice was empty, loss is real.
	if res.LostAcked[0] == 0 {
		t.Log("async kill lost nothing (killed node owned no devices); tolerated")
	}
}

func TestRunClusterLoadValidation(t *testing.T) {
	if _, err := RunClusterLoad(ClusterLoadConfig{}); err == nil {
		t.Fatal("missing Dir accepted")
	}
	if _, err := RunClusterLoad(ClusterLoadConfig{Dir: t.TempDir(), Nodes: 2, Kills: 3}); err == nil {
		t.Fatal("Kills > Nodes accepted")
	}
}
