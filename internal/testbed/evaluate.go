package testbed

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/vendors"
)

// Result is the outcome of one attack experiment.
type Result struct {
	// Variant is the attack procedure that ran.
	Variant core.AttackVariant
	// Outcome is the Table III classification.
	Outcome core.Outcome
	// Detail explains what was observed.
	Detail string
}

// Evaluate runs one attack variant against a fresh testbed for the design
// and classifies the outcome exactly as the paper does: ✓ when the attack
// demonstrably lands, ✗ when it is blocked, O when the adversary lacks the
// device-protocol knowledge to even try.
func Evaluate(design core.DesignSpec, v core.AttackVariant, opts ...Option) (Result, error) {
	tb, err := New(design, opts...)
	if err != nil {
		return Result{}, err
	}
	switch v {
	case core.VariantA1:
		return tb.runA1()
	case core.VariantA2:
		return tb.runA2()
	case core.VariantA3x1:
		return tb.runA3Unbind(core.VariantA3x1, core.UnbindDevIDAlone)
	case core.VariantA3x2:
		return tb.runA3Unbind(core.VariantA3x2, core.UnbindDevIDUserToken)
	case core.VariantA3x3:
		return tb.runA3x3()
	case core.VariantA3x4:
		return tb.runA3x4()
	case core.VariantA4x1:
		return tb.runA4x1()
	case core.VariantA4x2:
		return tb.runA4x2()
	case core.VariantA4x3:
		return tb.runA4x3()
	default:
		return Result{}, fmt.Errorf("testbed: unknown attack variant %v", v)
	}
}

// EvaluateAll runs every Table II variant against the design, each on a
// fresh testbed.
func EvaluateAll(design core.DesignSpec, opts ...Option) ([]Result, error) {
	variants := core.AllAttackVariants()
	results := make([]Result, 0, len(variants))
	for _, v := range variants {
		r, err := Evaluate(design, v, opts...)
		if err != nil {
			return nil, fmt.Errorf("testbed: %v: %w", v, err)
		}
		results = append(results, r)
	}
	return results, nil
}

// VendorResult is one vendor's measured Table III row.
type VendorResult struct {
	// Profile is the vendor under test.
	Profile vendors.Profile
	// Results holds every variant's outcome in Table II order.
	Results []Result
	// Row is the collapsed Table III row.
	Row vendors.PaperRow
}

// EvaluateVendor runs the full attack suite against a vendor profile and
// collapses the outcomes into a Table III row.
func EvaluateVendor(p vendors.Profile) (VendorResult, error) {
	results, err := EvaluateAll(p.Design)
	if err != nil {
		return VendorResult{}, fmt.Errorf("testbed: vendor %s: %w", p.Vendor, err)
	}
	return VendorResult{Profile: p, Results: results, Row: CollapseRow(results)}, nil
}

// EvaluateVendors runs the full attack suite against each profile
// concurrently and returns the rows in the input order — the parallel
// Table III regeneration. Every profile gets fresh testbeds (one per
// variant, exactly as EvaluateVendor builds them), so the runs share no
// state; results are identical to a sequential sweep. The first error
// aborts the sweep and is returned.
func EvaluateVendors(profiles []vendors.Profile) ([]VendorResult, error) {
	out := make([]VendorResult, len(profiles))
	errs := make([]error, len(profiles))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(profiles) {
		workers = len(profiles)
	}
	if workers <= 1 {
		for i, p := range profiles {
			vr, err := EvaluateVendor(p)
			if err != nil {
				return nil, err
			}
			out[i] = vr
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(profiles) {
					return
				}
				out[i], errs[i] = EvaluateVendor(profiles[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CollapseRow folds per-variant results into the Table III cell format:
// the A1 and A2 cells carry the single variant's outcome; the A3 and A4
// cells list the succeeded variants.
func CollapseRow(results []Result) vendors.PaperRow {
	var row vendors.PaperRow
	for _, r := range results {
		switch r.Variant {
		case core.VariantA1:
			row.A1 = r.Outcome
		case core.VariantA2:
			row.A2 = r.Outcome
		default:
			if !r.Outcome.Succeeded() {
				continue
			}
			switch r.Variant.Class() {
			case core.A3DeviceUnbinding:
				row.A3 = append(row.A3, r.Variant)
			case core.A4DeviceHijacking:
				row.A4 = append(row.A4, r.Variant)
			}
		}
	}
	return row
}

// MatchesPaper compares a measured row with the paper's published row.
func MatchesPaper(measured, published vendors.PaperRow) bool {
	if measured.A1 != published.A1 || measured.A2 != published.A2 {
		return false
	}
	return sameVariants(measured.A3, published.A3) && sameVariants(measured.A4, published.A4)
}

func sameVariants(a, b []core.AttackVariant) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[core.AttackVariant]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		if !set[v] {
			return false
		}
	}
	return true
}

// ---- attack procedures ---------------------------------------------------

// runA1 forges data-bearing device messages in the control state: fake
// readings go up, and any pending user data comes back down.
func (tb *Testbed) runA1() (Result, error) {
	res := Result{Variant: core.VariantA1}
	if err := tb.SetupVictim(); err != nil {
		return Result{}, err
	}
	// The victim schedules something private — the stealing target.
	if err := tb.victim.PushSchedule(tb.deviceID, protocol.UserData{
		Kind: "schedule", Body: "unlock 08:00, lock 22:00",
	}); err != nil {
		return Result{}, err
	}

	const fakePower = 9999
	_, err := tb.atk.ForgeStatus(tb.deviceID, protocol.StatusHeartbeat, []protocol.Reading{
		{Name: "power_w", Value: fakePower},
	})
	if err != nil {
		res.Outcome = classifyForgeErr(err)
		res.Detail = fmt.Sprintf("forged status rejected: %v", err)
		return res, nil
	}

	bound, err := tb.victimBound()
	if err != nil {
		return Result{}, err
	}
	injected := false
	if bound {
		readings, err := tb.victim.Readings(tb.deviceID)
		if err != nil {
			return Result{}, err
		}
		for _, r := range readings {
			if r.Value == fakePower {
				injected = true
			}
		}
	}
	stolen := len(tb.atk.StolenData()) > 0

	switch {
	case bound && injected && stolen:
		res.Outcome = core.OutcomeSucceeded
		res.Detail = "fake reading visible to the victim; victim's schedule exfiltrated"
	case !bound:
		res.Outcome = core.OutcomeFailed
		res.Detail = "forged status disturbed the binding instead of impersonating the device"
	default:
		res.Outcome = core.OutcomeFailed
		res.Detail = fmt.Sprintf("injection=%v stolen=%v", injected, stolen)
	}
	return res, nil
}

// runA2 occupies the binding before the victim's first setup, then lets
// the victim attempt a normal setup.
func (tb *Testbed) runA2() (Result, error) {
	res := Result{Variant: core.VariantA2}
	_, err := tb.atk.ForgeBind(tb.deviceID)
	if err != nil {
		res.Outcome = classifyForgeErr(err)
		res.Detail = fmt.Sprintf("forged bind rejected: %v", err)
		if res.Outcome == core.OutcomeFailed {
			// Sanity: the legitimate setup must still work.
			if setupErr := tb.SetupVictim(); setupErr != nil {
				return Result{}, fmt.Errorf("testbed: setup broken even without occupation: %w", setupErr)
			}
		}
		return res, nil
	}

	setupErr := tb.SetupVictim()
	if setupErr == nil && tb.VictimHasControl() {
		res.Outcome = core.OutcomeFailed
		res.Detail = "the victim's setup displaced the squatting binding"
		return res, nil
	}
	res.Outcome = core.OutcomeSucceeded
	if setupErr != nil {
		res.Detail = fmt.Sprintf("victim setup failed: %v", setupErr)
	} else {
		res.Detail = "victim setup completed but control never reached the device"
	}
	return res, nil
}

// runA3Unbind covers A3-1 (Unbind:DevId) and A3-2 (Unbind with the
// attacker's own token): disconnect the victim via a forged unbind.
func (tb *Testbed) runA3Unbind(v core.AttackVariant, form core.UnbindForm) (Result, error) {
	res := Result{Variant: v}
	if err := tb.SetupVictim(); err != nil {
		return Result{}, err
	}
	if err := tb.atk.ForgeUnbind(tb.deviceID, form); err != nil {
		res.Outcome = classifyForgeErr(err)
		res.Detail = fmt.Sprintf("forged unbind rejected: %v", err)
		return res, nil
	}
	bound, err := tb.victimBound()
	if err != nil {
		return Result{}, err
	}
	if bound {
		res.Outcome = core.OutcomeFailed
		res.Detail = "binding survived the forged unbind"
		return res, nil
	}
	res.Outcome = core.OutcomeSucceeded
	res.Detail = "victim's binding revoked; device disconnected from the user"
	return res, nil
}

// runA3x3 replaces the victim's binding with a forged bind, succeeding
// only when the replacement does NOT grant control (otherwise the episode
// classifies as A4-1).
func (tb *Testbed) runA3x3() (Result, error) {
	res := Result{Variant: core.VariantA3x3}
	if err := tb.SetupVictim(); err != nil {
		return Result{}, err
	}
	if _, err := tb.atk.ForgeBind(tb.deviceID); err != nil {
		res.Outcome = classifyForgeErr(err)
		res.Detail = fmt.Sprintf("forged bind rejected: %v", err)
		return res, nil
	}
	bound, err := tb.victimBound()
	if err != nil {
		return Result{}, err
	}
	if bound {
		res.Outcome = core.OutcomeFailed
		res.Detail = "binding survived the forged bind"
		return res, nil
	}
	if tb.AttackerHasControl() {
		res.Outcome = core.OutcomeFailed
		res.Detail = "replacement granted control: the episode classifies as A4-1"
		return res, nil
	}
	res.Outcome = core.OutcomeSucceeded
	res.Detail = "binding replaced; the attacker gains no control, leaving pure disconnection"
	return res, nil
}

// runA3x4 forges a registration status message so the cloud treats the
// device as reset and drops the binding.
func (tb *Testbed) runA3x4() (Result, error) {
	res := Result{Variant: core.VariantA3x4}
	if err := tb.SetupVictim(); err != nil {
		return Result{}, err
	}
	if _, err := tb.atk.ForgeStatus(tb.deviceID, protocol.StatusRegister, nil); err != nil {
		res.Outcome = classifyForgeErr(err)
		res.Detail = fmt.Sprintf("forged registration rejected: %v", err)
		return res, nil
	}
	bound, err := tb.victimBound()
	if err != nil {
		return Result{}, err
	}
	if bound {
		res.Outcome = core.OutcomeFailed
		res.Detail = "binding survived the forged registration"
		return res, nil
	}
	res.Outcome = core.OutcomeSucceeded
	res.Detail = "cloud adopted the forged registration as a reset and revoked the binding"
	return res, nil
}

// runA4x1 replaces the victim's binding in the control state and checks
// for takeover.
func (tb *Testbed) runA4x1() (Result, error) {
	res := Result{Variant: core.VariantA4x1}
	if err := tb.SetupVictim(); err != nil {
		return Result{}, err
	}
	if _, err := tb.atk.ForgeBind(tb.deviceID); err != nil {
		res.Outcome = classifyForgeErr(err)
		res.Detail = fmt.Sprintf("forged bind rejected: %v", err)
		return res, nil
	}
	if tb.AttackerHasControl() {
		res.Outcome = core.OutcomeSucceeded
		res.Detail = "existing binding manipulated without checks; attacker commands the device"
		return res, nil
	}
	res.Outcome = core.OutcomeFailed
	res.Detail = "forged bind did not yield control of the real device"
	return res, nil
}

// runA4x2 binds during the victim's setup window (device online, not yet
// bound) and checks for durable takeover after the setup finishes.
func (tb *Testbed) runA4x2() (Result, error) {
	res := Result{Variant: core.VariantA4x2}
	var (
		hookRan bool
		hookErr error
	)
	tb.SetPreBindHook(func() {
		hookRan = true
		_, hookErr = tb.atk.ForgeBind(tb.deviceID)
	})
	setupErr := tb.victim.SetupDevice(tb.dev.LocalName(), tb.actions)

	if !hookRan {
		res.Outcome = core.OutcomeFailed
		res.Detail = "setup exposes no online-unbound window"
		if setupErr != nil {
			return Result{}, fmt.Errorf("testbed: setup failed without attack: %w", setupErr)
		}
		return res, nil
	}
	if hookErr != nil {
		res.Outcome = classifyForgeErr(hookErr)
		res.Detail = fmt.Sprintf("forged bind in window rejected: %v", hookErr)
		return res, nil
	}
	if tb.AttackerHasControl() {
		res.Outcome = core.OutcomeSucceeded
		res.Detail = fmt.Sprintf("bound first in the setup window (victim setup: %v)", setupErr)
		return res, nil
	}
	res.Outcome = core.OutcomeFailed
	res.Detail = "window bind did not yield durable control"
	return res, nil
}

// runA4x3 chains a forged unbind (A3-1 or A3-2) with a forged bind to
// hijack from the control state.
func (tb *Testbed) runA4x3() (Result, error) {
	res := Result{Variant: core.VariantA4x3}
	if err := tb.SetupVictim(); err != nil {
		return Result{}, err
	}

	unbound := false
	sawUnavailable := false
	var lastErr error
	for _, form := range []core.UnbindForm{core.UnbindDevIDAlone, core.UnbindDevIDUserToken} {
		if !tb.design.SupportsUnbind(form) {
			continue
		}
		if err := tb.atk.ForgeUnbind(tb.deviceID, form); err != nil {
			if classifyForgeErr(err) == core.OutcomeUnconfirmed {
				sawUnavailable = true
			}
			lastErr = err
			continue
		}
		stillBound, err := tb.victimBound()
		if err != nil {
			return Result{}, err
		}
		if !stillBound {
			unbound = true
			break
		}
	}
	if !unbound {
		if sawUnavailable {
			res.Outcome = core.OutcomeUnconfirmed
			res.Detail = "the unbinding step could not be confirmed"
		} else {
			res.Outcome = core.OutcomeFailed
			res.Detail = fmt.Sprintf("no forged unbind disconnected the victim (last: %v)", lastErr)
		}
		return res, nil
	}

	if _, err := tb.atk.ForgeBind(tb.deviceID); err != nil {
		res.Outcome = classifyForgeErr(err)
		res.Detail = fmt.Sprintf("follow-up bind rejected: %v", err)
		return res, nil
	}
	if tb.AttackerHasControl() {
		res.Outcome = core.OutcomeSucceeded
		res.Detail = "unbind opened the online state; the follow-up bind hijacked the device"
		return res, nil
	}
	res.Outcome = core.OutcomeFailed
	res.Detail = "the chained bind did not yield control of the real device"
	return res, nil
}
