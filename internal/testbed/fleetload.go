package testbed

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/device"
	"github.com/iotbind/iotbind/internal/httpapi"
	"github.com/iotbind/iotbind/internal/localnet"
	"github.com/iotbind/iotbind/internal/tcpapi"
	"github.com/iotbind/iotbind/internal/transport"
)

// FleetFrontEnd selects the wire front end a fleet load run drives.
type FleetFrontEnd string

// The two remote front ends.
const (
	FleetFrontEndHTTP FleetFrontEnd = "http"
	FleetFrontEndTCP  FleetFrontEnd = "tcp"
)

// FleetLoadConfig parameterizes a status-path load run: a fleet of devices
// each delivering a stream of heartbeats to one cloud through a real
// network front end, per-message or coalesced into StatusBatch frames.
type FleetLoadConfig struct {
	// Design is the vendor design under test. Its device-authentication
	// mode must let a registered device send status messages without extra
	// provisioning (device-ID or public-key auth).
	Design core.DesignSpec
	// Devices is the fleet size.
	Devices int
	// Heartbeats is how many heartbeats each device delivers.
	Heartbeats int
	// BatchSize <= 1 sends each heartbeat as its own wire message; larger
	// values coalesce via device.WithBatching.
	BatchSize int
	// FrontEnd picks the wire protocol (default HTTP).
	FrontEnd FleetFrontEnd
	// Workers bounds the concurrent device drivers (default 4, capped at
	// Devices).
	Workers int
	// ReadingEvery makes every Nth heartbeat of each device carry a
	// sensor reading (0 disables), pushing data-bearing status messages
	// through the load path alongside bare keep-alives.
	ReadingEvery int
	// OnService exposes the freshly built cloud service to the caller
	// before traffic starts. Snapshot-under-load tests use it to capture
	// concurrent snapshots while the fleet is live.
	OnService func(*cloud.Service)
}

// FleetLoadResult reports one load run.
type FleetLoadResult struct {
	// Messages is the number of heartbeats delivered (Devices×Heartbeats).
	Messages int
	// WireCalls is the number of wire round-trips that carried them —
	// equal to Messages per-message, Messages/BatchSize (rounded up per
	// device) when coalescing.
	WireCalls int
	// Elapsed is the wall-clock time of the heartbeat phase (setup and
	// registration excluded).
	Elapsed time.Duration
	// MsgsPerSec is Messages/Elapsed.
	MsgsPerSec float64
}

// RunFleetLoad drives the configured fleet and reports throughput. The
// run fails on the first rejected heartbeat: a load number measured while
// messages were silently bouncing would be meaningless.
func RunFleetLoad(cfg FleetLoadConfig) (FleetLoadResult, error) {
	if cfg.Devices <= 0 {
		cfg.Devices = 1
	}
	if cfg.Heartbeats <= 0 {
		cfg.Heartbeats = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	if cfg.FrontEnd == "" {
		cfg.FrontEnd = FleetFrontEndHTTP
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Workers > cfg.Devices {
		cfg.Workers = cfg.Devices
	}

	clock := &Clock{t: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)}
	registry := cloud.NewRegistry()
	ids := make([]string, cfg.Devices)
	for i := range ids {
		ids[i] = fmt.Sprintf("AA:BB:CC:%02X:%02X:%02X", (i>>16)&0xff, (i>>8)&0xff, i&0xff)
		if err := registry.Add(cloud.DeviceRecord{
			ID:            ids[i],
			FactorySecret: "factory-secret-" + ids[i],
			Model:         cfg.Design.Name,
		}); err != nil {
			return FleetLoadResult{}, fmt.Errorf("testbed: fleet load: %w", err)
		}
	}
	svc, err := cloud.NewService(cfg.Design, registry, cloud.WithClock(clock.Now))
	if err != nil {
		return FleetLoadResult{}, fmt.Errorf("testbed: fleet load: %w", err)
	}
	if cfg.OnService != nil {
		cfg.OnService(svc)
	}

	// Stand up the requested front end on a loopback listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return FleetLoadResult{}, fmt.Errorf("testbed: fleet load: listen: %w", err)
	}
	var dial func() (transport.Cloud, func(), error)
	switch cfg.FrontEnd {
	case FleetFrontEndHTTP:
		hs := &http.Server{Handler: httpapi.NewServer(svc)}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		base := "http://" + ln.Addr().String()
		dial = func() (transport.Cloud, func(), error) {
			return httpapi.NewClient(base), func() {}, nil
		}
	case FleetFrontEndTCP:
		ts := tcpapi.NewServer(svc)
		go func() { _ = ts.Serve(ln) }()
		defer ts.Close()
		addr := ln.Addr().String()
		dial = func() (transport.Cloud, func(), error) {
			c, err := tcpapi.Dial(addr)
			if err != nil {
				return nil, nil, err
			}
			return c, func() { _ = c.Close() }, nil
		}
	default:
		_ = ln.Close()
		return FleetLoadResult{}, fmt.Errorf("testbed: fleet load: unknown front end %q", cfg.FrontEnd)
	}

	// Build and register the fleet before the timed phase. Each device
	// owns its connection so workers never share one serialized client.
	devs := make([]*device.Device, cfg.Devices)
	closers := make([]func(), cfg.Devices)
	defer func() {
		for _, c := range closers {
			if c != nil {
				c()
			}
		}
	}()
	for i, id := range ids {
		cl, closeClient, err := dial()
		if err != nil {
			return FleetLoadResult{}, fmt.Errorf("testbed: fleet load: dial: %w", err)
		}
		closers[i] = closeClient
		opts := []device.Option{device.WithClock(clock.Now)}
		if cfg.BatchSize > 1 {
			opts = append(opts, device.WithBatching(cfg.BatchSize, 0))
		}
		// No source stamping: the wire front end assigns the authoritative
		// source address from the connection.
		dev, err := device.New(device.Config{
			ID:            id,
			FactorySecret: "factory-secret-" + id,
			LocalName:     fmt.Sprintf("fleet-dev-%d", i),
			Model:         cfg.Design.Name,
		}, cfg.Design, cl, opts...)
		if err != nil {
			return FleetLoadResult{}, fmt.Errorf("testbed: fleet load: %w", err)
		}
		if err := dev.Provision(localnet.Provisioning{WiFiSSID: "fleet-lab"}); err != nil {
			return FleetLoadResult{}, fmt.Errorf("testbed: fleet load: register %s: %w", id, err)
		}
		devs[i] = dev
	}

	// Timed phase: workers drive disjoint slices of the fleet.
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	start := time.Now()
	per := (cfg.Devices + cfg.Workers - 1) / cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > cfg.Devices {
			hi = cfg.Devices
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(batch []*device.Device) {
			defer wg.Done()
			for _, dev := range batch {
				for n := 0; n < cfg.Heartbeats; n++ {
					if cfg.ReadingEvery > 0 && n%cfg.ReadingEvery == 0 {
						dev.QueueReading("power_w", float64(n))
					}
					if err := dev.Heartbeat(); err != nil {
						fail(err)
						return
					}
				}
				if err := dev.Flush(); err != nil {
					fail(err)
					return
				}
			}
		}(devs[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return FleetLoadResult{}, fmt.Errorf("testbed: fleet load: %w", firstErr)
	}

	res := FleetLoadResult{
		Messages: cfg.Devices * cfg.Heartbeats,
		Elapsed:  elapsed,
	}
	res.WireCalls = cfg.Devices * int(math.Ceil(float64(cfg.Heartbeats)/float64(cfg.BatchSize)))
	if elapsed > 0 {
		res.MsgsPerSec = float64(res.Messages) / elapsed.Seconds()
	}
	return res, nil
}
