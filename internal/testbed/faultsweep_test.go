package testbed

import (
	"testing"

	"github.com/iotbind/iotbind/internal/core"
)

func lossDesign() core.DesignSpec {
	return core.DesignSpec{
		Name:                   "loss-sweep",
		DeviceAuth:             core.AuthDevToken,
		Binding:                core.BindACLApp,
		UnbindForms:            []core.UnbindForm{core.UnbindDevIDUserToken},
		CheckBoundUserOnBind:   true,
		CheckBoundUserOnUnbind: true,
		PostBindingToken:       true,
	}
}

// TestBindingUnderLossLifecycleSurvives is the acceptance test for the
// fault-and-recovery layer: with a quarter of all deliveries failing
// (half dropped before the cloud, half after it mutated state), the full
// bind life cycle still completes through retries, and the final shadow
// state — position, bound user, and number of bind transitions — is
// identical to a fault-free run's. The at-least-once redeliveries that
// the idempotency log absorbed are counted to prove that path ran.
func TestBindingUnderLossLifecycleSurvives(t *testing.T) {
	cfg := LossConfig{
		Design:      lossDesign(),
		Rates:       []float64{0.25},
		Trials:      8,
		Seed:        42,
		MaxAttempts: 8,
	}
	points, err := RunBindingUnderLoss(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d, want 1", len(points))
	}
	pt := points[0]
	if pt.Succeeded != pt.Trials {
		t.Errorf("succeeded %d/%d life cycles at 25%% loss — retries did not recover, or recovery changed final state",
			pt.Succeeded, pt.Trials)
	}
	if pt.InjectedFailures == 0 {
		t.Error("0 injected failures at 25% — the plane never fired, the run proves nothing")
	}
	if pt.Deduplicated == 0 {
		t.Error("0 deduplicated redeliveries — the fail-after + idempotency path was never exercised")
	}
}

// TestBindingUnderLossDeterministic proves the whole sweep is a pure
// function of its config: same seed, same points.
func TestBindingUnderLossDeterministic(t *testing.T) {
	cfg := LossConfig{
		Design: lossDesign(),
		Rates:  []float64{0.1, 0.3},
		Trials: 4,
		Seed:   7,
	}
	a, err := RunBindingUnderLoss(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBindingUnderLoss(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d diverged across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestBindingUnderLossRequiresUnbindForm proves the sweep rejects designs
// whose life cycle it cannot complete, instead of failing obscurely.
func TestBindingUnderLossRequiresUnbindForm(t *testing.T) {
	d := lossDesign()
	d.UnbindForms = []core.UnbindForm{core.UnbindDevIDAlone}
	if _, err := RunBindingUnderLoss(LossConfig{Design: d, Rates: []float64{0.1}, Trials: 1, Seed: 1}); err == nil {
		t.Fatal("sweep accepted a design without the owner-unbind form")
	}
}
