// Package testbed wires the full three-party emulation — vendor cloud,
// victim home network with device and app, and a remote attacker on a
// different network — and runs the paper's attack procedures end to end,
// classifying each outcome in Table III vocabulary (✓ / ✗ / O).
//
// Experiments are deterministic: a manual clock drives heartbeat expiry
// and every agent is stepped explicitly.
package testbed

import (
	"errors"
	"fmt"
	"time"

	"github.com/iotbind/iotbind/internal/app"
	"github.com/iotbind/iotbind/internal/attacker"
	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/device"
	"github.com/iotbind/iotbind/internal/localnet"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
)

// Default experiment identities.
const (
	DefaultVictimUser   = "victim@example.com"
	DefaultAttackerUser = "attacker@example.com"
	DefaultDeviceID     = "AA:BB:CC:00:10:01"
	DefaultHomeIP       = "203.0.113.7"
	DefaultAttackerIP   = "198.51.100.66"
)

// Clock is the testbed's manual clock.
type Clock struct{ t time.Time }

// Now returns the current simulated time.
func (c *Clock) Now() time.Time { return c.t }

// Advance moves the simulated time forward.
func (c *Clock) Advance(d time.Duration) { c.t = c.t.Add(d) }

// Testbed is one experiment rig: a vendor cloud, the victim triple, and a
// remote attacker.
type Testbed struct {
	design core.DesignSpec
	clock  *Clock

	svc     *cloud.Service
	home    *localnet.Network
	remote  *localnet.Network
	victim  *app.App
	dev     *device.Device
	atk     *attacker.Attacker
	actions userActions

	deviceID string
	seq      int
	hook     func()
}

// userActions gives the victim's app "hands" on the home devices.
type userActions struct{ dev *device.Device }

func (u userActions) PressButton(localName string) error {
	if localName != u.dev.LocalName() {
		return fmt.Errorf("testbed: no device named %q", localName)
	}
	return u.dev.PressButton()
}

func (u userActions) ResetDevice(localName string) error {
	if localName != u.dev.LocalName() {
		return fmt.Errorf("testbed: no device named %q", localName)
	}
	u.dev.Reset()
	return nil
}

// Option configures a Testbed.
type Option interface {
	apply(*config)
}

type config struct {
	deviceID string
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithDeviceID overrides the victim's device ID (e.g. one generated from a
// vendor's ID scheme).
func WithDeviceID(id string) Option {
	return optionFunc(func(c *config) { c.deviceID = id })
}

// New builds a testbed for one design: the vendor cloud with the victim's
// device registered, the victim's app logged in on the home network, and a
// prepared attacker on a remote network who knows the victim's device ID.
func New(design core.DesignSpec, opts ...Option) (*Testbed, error) {
	cfg := config{deviceID: DefaultDeviceID}
	for _, o := range opts {
		o.apply(&cfg)
	}

	clock := &Clock{t: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)}
	registry := cloud.NewRegistry()
	if err := registry.Add(cloud.DeviceRecord{
		ID:            cfg.deviceID,
		FactorySecret: "factory-secret-" + cfg.deviceID,
		Model:         design.Name,
	}); err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	svc, err := cloud.NewService(design, registry, cloud.WithClock(clock.Now))
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}

	home := localnet.NewNetwork("victim-home", DefaultHomeIP)
	remote := localnet.NewNetwork("attacker-lair", DefaultAttackerIP)
	homeTransport := transport.StampSource(svc, home.PublicIP())
	remoteTransport := transport.StampSource(svc, remote.PublicIP())

	dev, err := device.New(device.Config{
		ID:            cfg.deviceID,
		FactorySecret: "factory-secret-" + cfg.deviceID,
		LocalName:     "victim-device",
		Model:         design.Name,
	}, design, homeTransport, device.WithClock(clock.Now))
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	if err := home.Join(dev); err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}

	tb := &Testbed{
		design:   design,
		clock:    clock,
		svc:      svc,
		home:     home,
		remote:   remote,
		dev:      dev,
		actions:  userActions{dev: dev},
		deviceID: cfg.deviceID,
	}

	victim, err := app.New(DefaultVictimUser, "pw-victim", design, homeTransport, home,
		app.WithPreBindHook(func() {
			if tb.hook != nil {
				tb.hook()
			}
		}))
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	if err := victim.RegisterAccount(); err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	if err := victim.Login(); err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	tb.victim = victim

	atk, err := attacker.New(DefaultAttackerUser, "pw-attacker", design, remoteTransport)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	if err := atk.Prepare(); err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	tb.atk = atk
	return tb, nil
}

// Design returns the design under test.
func (tb *Testbed) Design() core.DesignSpec { return tb.design }

// Clock returns the manual clock.
func (tb *Testbed) Clock() *Clock { return tb.clock }

// Cloud returns the emulated vendor cloud.
func (tb *Testbed) Cloud() *cloud.Service { return tb.svc }

// VictimApp returns the victim's app agent.
func (tb *Testbed) VictimApp() *app.App { return tb.victim }

// VictimDevice returns the victim's device agent.
func (tb *Testbed) VictimDevice() *device.Device { return tb.dev }

// Attacker returns the remote attacker.
func (tb *Testbed) Attacker() *attacker.Attacker { return tb.atk }

// DeviceID returns the victim's device ID (the attacker's known input).
func (tb *Testbed) DeviceID() string { return tb.deviceID }

// SetPreBindHook installs a callback that runs inside the victim's setup
// window (after the device comes online, before the app binds) — the A4-2
// injection point.
func (tb *Testbed) SetPreBindHook(hook func()) { tb.hook = hook }

// SetupVictim runs the victim's complete device setup, lets the physical
// button window (if any) lapse, and settles one heartbeat, leaving the
// shadow in the steady control state attacks launch against.
func (tb *Testbed) SetupVictim() error {
	if err := tb.victim.SetupDevice(tb.dev.LocalName(), tb.actions); err != nil {
		return fmt.Errorf("testbed: victim setup: %w", err)
	}
	// Attacks run at an arbitrary later time: any setup-time binding
	// window has long closed.
	tb.clock.Advance(cloud.DefaultButtonWindow + time.Second)
	if err := tb.dev.Heartbeat(); err != nil {
		return fmt.Errorf("testbed: settle heartbeat: %w", err)
	}
	st, err := tb.Shadow()
	if err != nil {
		return err
	}
	if st.State != core.StateControl || st.BoundUser != DefaultVictimUser {
		return fmt.Errorf("testbed: setup ended in %v bound to %q, want control/victim", st.State, st.BoundUser)
	}
	return nil
}

// Shadow returns the victim device's shadow state.
func (tb *Testbed) Shadow() (protocol.ShadowStateResponse, error) {
	st, err := tb.svc.ShadowState(protocol.ShadowStateRequest{DeviceID: tb.deviceID})
	if err != nil {
		return protocol.ShadowStateResponse{}, fmt.Errorf("testbed: shadow: %w", err)
	}
	return st, nil
}

// VictimHasControl probes whether the victim can actually command the real
// device: a uniquely identified command must round-trip to the device's
// executed log.
func (tb *Testbed) VictimHasControl() bool {
	tb.seq++
	id := fmt.Sprintf("victim-probe-%d", tb.seq)
	if err := tb.victim.Control(tb.deviceID, protocol.Command{ID: id, Name: "probe"}); err != nil {
		return false
	}
	return tb.deviceExecuted(id)
}

// AttackerHasControl probes whether the attacker can command the real
// device.
func (tb *Testbed) AttackerHasControl() bool {
	tb.seq++
	id := fmt.Sprintf("attacker-probe-%d", tb.seq)
	if err := tb.atk.Control(tb.deviceID, protocol.Command{ID: id, Name: "probe"}); err != nil {
		return false
	}
	return tb.deviceExecuted(id)
}

// deviceExecuted pumps one device heartbeat (tolerating rejection — a
// cut-off device simply fetches nothing) and checks the executed log.
func (tb *Testbed) deviceExecuted(cmdID string) bool {
	_ = tb.dev.Heartbeat()
	for _, c := range tb.dev.Executed() {
		if c.ID == cmdID {
			return true
		}
	}
	return false
}

// victimBound reports whether the victim still owns the binding.
func (tb *Testbed) victimBound() (bool, error) {
	st, err := tb.Shadow()
	if err != nil {
		return false, err
	}
	return st.BoundUser == DefaultVictimUser, nil
}

// classifyForgeErr maps an attack-step error to its Table III outcome.
func classifyForgeErr(err error) core.Outcome {
	if errors.Is(err, attacker.ErrForgeryUnavailable) {
		return core.OutcomeUnconfirmed
	}
	return core.OutcomeFailed
}
