package testbed

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/iotbind/iotbind/internal/binapi"
	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/protocol"
)

// ConnLoadMode selects how connections reach the binapi server.
type ConnLoadMode string

const (
	// ConnLoadPipe uses in-process duplex buffers: zero per-connection
	// goroutines on the server, which is what makes 100k+ concurrent
	// connections in one test process feasible.
	ConnLoadPipe ConnLoadMode = "pipe"
	// ConnLoadSocket uses real loopback TCP sockets — bounded by file
	// descriptors and ephemeral ports, so it runs at thousands scale as
	// an honest-wire smoke next to the pipe-mode headline.
	ConnLoadSocket ConnLoadMode = "socket"
)

// ConnLoadConfig parameterizes a connection-scale run against the
// binapi front end: many persistent connections, each a registered
// device delivering heartbeats over the multiplexed binary protocol.
type ConnLoadConfig struct {
	// Design is the binding design (default ClusterLabDesign — token-free,
	// so setup per connection is one register status).
	Design core.DesignSpec
	// Conns is the connection count (default 1000). Each connection is
	// its own registered device.
	Conns int
	// MsgsPerConn is the number of timed heartbeats per connection
	// (default 5), sent after an untimed register.
	MsgsPerConn int
	// Mode picks pipe or socket transport (default pipe).
	Mode ConnLoadMode
	// Workers bounds the goroutines driving traffic (default
	// 8×GOMAXPROCS, capped at Conns). All connections stay open for the
	// whole run; Workers only bounds how many have a request in flight.
	Workers int
	// Window is the per-connection credit window the server advertises
	// (default 8 — small, because slot tables are per-connection memory).
	Window int
	// Stripes is the server event-loop stripe count (default GOMAXPROCS).
	Stripes int
	// Readiness selects the server's socket readiness source (default
	// auto: raw epoll on Linux, per-connection pump elsewhere). Pipe
	// mode ignores it. Socket clients dial through a shared
	// ClientPoller whenever the effective source is epoll, so neither
	// side spends a goroutine per connection.
	Readiness binapi.Readiness
}

// ConnLoadResult reports one connection-scale run.
type ConnLoadResult struct {
	// Mode, Conns, Stripes, Window echo the effective configuration.
	Mode    ConnLoadMode
	Conns   int
	Stripes int
	Window  int
	// Messages is the number of timed heartbeats delivered.
	Messages int
	// Elapsed is the wall-clock time of the timed phase.
	Elapsed time.Duration
	// MsgsPerSec is Messages/Elapsed.
	MsgsPerSec float64
	// P50Micros and P99Micros are request round-trip latency
	// percentiles in microseconds over every timed message.
	P50Micros float64
	P99Micros float64
	// BytesPerConn is the mean wire traffic per connection (both
	// directions) across the whole run, including registration.
	BytesPerConn float64
	// Goroutines is the process goroutine count while every connection
	// was open — the stripe-architecture proof: in pipe mode it stays
	// near Workers + Stripes regardless of Conns.
	Goroutines int
	// ServerGoroutines is the server's own accounting (stripes plus
	// pollers plus, in pump mode, one goroutine per connection) at the
	// same instant — the readiness-source proof, independent of how
	// many goroutines the client harness spends.
	ServerGoroutines int
	// Readiness echoes the server's effective readiness source in
	// socket mode ("epoll" or "pump"); empty in pipe mode.
	Readiness string
}

// RunConnLoad opens cfg.Conns persistent binapi connections against one
// cloud, registers a device per connection, then drives MsgsPerConn
// heartbeats per connection and reports throughput, latency percentiles
// and per-connection wire cost. The run fails on the first rejected
// message.
func RunConnLoad(cfg ConnLoadConfig) (ConnLoadResult, error) {
	var res ConnLoadResult
	if cfg.Design.Name == "" {
		cfg.Design = ClusterLabDesign()
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 1000
	}
	if cfg.MsgsPerConn <= 0 {
		cfg.MsgsPerConn = 5
	}
	if cfg.Mode == "" {
		cfg.Mode = ConnLoadPipe
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8 * runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > cfg.Conns {
		cfg.Workers = cfg.Conns
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = runtime.GOMAXPROCS(0)
	}

	clock := &Clock{t: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)}
	registry := cloud.NewRegistry()
	ids := make([]string, cfg.Conns)
	for i := range ids {
		ids[i] = fmt.Sprintf("%02X:BB:CC:%02X:%02X:%02X", (i>>24)&0xff, (i>>16)&0xff, (i>>8)&0xff, i&0xff)
		if err := registry.Add(cloud.DeviceRecord{
			ID:            ids[i],
			FactorySecret: "factory-secret-" + ids[i],
			Model:         cfg.Design.Name,
		}); err != nil {
			return res, fmt.Errorf("testbed: conn load: %w", err)
		}
	}
	svc, err := cloud.NewService(cfg.Design, registry, cloud.WithClock(clock.Now))
	if err != nil {
		return res, fmt.Errorf("testbed: conn load: %w", err)
	}

	srv := binapi.NewServer(svc,
		binapi.WithWindow(cfg.Window), binapi.WithStripes(cfg.Stripes),
		binapi.WithReadiness(cfg.Readiness))
	defer srv.Close()

	var dial func(i int) (*binapi.Client, error)
	switch cfg.Mode {
	case ConnLoadPipe:
		dial = func(i int) (*binapi.Client, error) {
			return srv.Pipe(fmt.Sprintf("10.%d.%d.%d", (i>>16)&0xff, (i>>8)&0xff, i&0xff))
		}
	case ConnLoadSocket:
		if need := 2*cfg.Conns + 512; !EnsureFDLimit(need) {
			return res, fmt.Errorf("testbed: conn load: cannot raise fd limit to %d (ulimit -n)", need)
		}
		// One loopback listener serves ~16k connections before the
		// ~28k ephemeral-port range per (src ip, dst ip, dst port)
		// tuple gets tight; larger fleets spread across aliased
		// 127.0.0.N addresses. Platforms without implicit loopback
		// aliases fall back to extra listeners on 127.0.0.1, which
		// still splits the dst-port dimension of the tuple.
		addrs := make([]string, 0, cfg.Conns/16000+1)
		for k := 0; k <= cfg.Conns/16000; k++ {
			ln, lerr := net.Listen("tcp", fmt.Sprintf("127.0.0.%d:0", k+1))
			if lerr != nil {
				ln, lerr = net.Listen("tcp", "127.0.0.1:0")
			}
			if lerr != nil {
				return res, fmt.Errorf("testbed: conn load: listen: %w", lerr)
			}
			go func() { _ = srv.Serve(ln) }()
			addrs = append(addrs, ln.Addr().String())
		}
		var cp *binapi.ClientPoller
		if srv.Readiness() == binapi.ReadinessEpoll {
			p, perr := binapi.NewClientPoller()
			if perr != nil {
				return res, fmt.Errorf("testbed: conn load: client poller: %w", perr)
			}
			cp = p
			defer cp.Close()
		}
		dial = func(i int) (*binapi.Client, error) {
			addr := addrs[i%len(addrs)]
			if cp != nil {
				return cp.Dial(addr)
			}
			return binapi.Dial(addr)
		}
		res.Readiness = srv.Readiness().String()
	default:
		return res, fmt.Errorf("testbed: conn load: unknown mode %q", cfg.Mode)
	}

	// Open every connection and register its device — untimed setup.
	// Workers share the connection slice; each connection is driven by
	// exactly one worker at a time throughout.
	conns := make([]*binapi.Client, cfg.Conns)
	defer func() {
		for _, c := range conns {
			if c != nil {
				_ = c.Close()
			}
		}
	}()
	var (
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	per := (cfg.Conns + cfg.Workers - 1) / cfg.Workers
	forEachSlice := func(fn func(lo, hi int)) {
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			lo, hi := w*per, (w+1)*per
			if hi > cfg.Conns {
				hi = cfg.Conns
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				fn(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	forEachSlice(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c, derr := dial(i)
			if derr != nil {
				fail(fmt.Errorf("dial conn %d: %w", i, derr))
				return
			}
			conns[i] = c
			if _, serr := c.HandleStatus(protocol.StatusRequest{
				Kind: protocol.StatusRegister, DeviceID: ids[i],
				Firmware: "1.0", Model: cfg.Design.Name,
			}); serr != nil {
				fail(fmt.Errorf("register conn %d: %w", i, serr))
				return
			}
		}
	})
	if firstErr != nil {
		return res, fmt.Errorf("testbed: conn load: %w", firstErr)
	}

	// Every connection is now open and registered; this is the number
	// the stripe architecture is about.
	res.Goroutines = runtime.NumGoroutine()
	res.ServerGoroutines = srv.Goroutines()

	// Timed phase: workers sweep their connection slices round-robin so
	// traffic interleaves across the whole fleet rather than finishing
	// one connection before touching the next.
	lats := make([][]int64, cfg.Workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > cfg.Conns {
			hi = cfg.Conns
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			mine := make([]int64, 0, (hi-lo)*cfg.MsgsPerConn)
			for n := 0; n < cfg.MsgsPerConn; n++ {
				for i := lo; i < hi; i++ {
					t0 := time.Now()
					if _, herr := conns[i].HandleStatus(protocol.StatusRequest{
						Kind: protocol.StatusHeartbeat, DeviceID: ids[i],
					}); herr != nil {
						fail(fmt.Errorf("heartbeat conn %d: %w", i, herr))
						return
					}
					mine = append(mine, time.Since(t0).Microseconds())
				}
			}
			lats[w] = mine
		}(w, lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return res, fmt.Errorf("testbed: conn load: %w", firstErr)
	}

	all := make([]int64, 0, cfg.Conns*cfg.MsgsPerConn)
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var bytes int64
	for _, c := range conns {
		bytes += c.BytesIn() + c.BytesOut()
	}

	res.Mode = cfg.Mode
	res.Conns = cfg.Conns
	res.Stripes = cfg.Stripes
	res.Window = cfg.Window
	res.Messages = len(all)
	res.Elapsed = elapsed
	if elapsed > 0 {
		res.MsgsPerSec = float64(res.Messages) / elapsed.Seconds()
	}
	if len(all) > 0 {
		res.P50Micros = float64(all[len(all)/2])
		res.P99Micros = float64(all[len(all)*99/100])
	}
	res.BytesPerConn = float64(bytes) / float64(cfg.Conns)
	return res, nil
}
