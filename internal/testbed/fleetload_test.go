package testbed

import (
	"strings"
	"testing"

	"github.com/iotbind/iotbind/internal/core"
)

func fleetDesign() core.DesignSpec {
	return core.DesignSpec{
		Name:                   "fleet-load",
		DeviceAuth:             core.AuthDevID,
		Binding:                core.BindACLApp,
		UnbindForms:            []core.UnbindForm{core.UnbindDevIDUserToken},
		CheckBoundUserOnBind:   true,
		CheckBoundUserOnUnbind: true,
	}
}

// TestRunFleetLoadPerMessage smoke-runs the HTTP front end per-message:
// every heartbeat is its own wire call.
func TestRunFleetLoadPerMessage(t *testing.T) {
	res, err := RunFleetLoad(FleetLoadConfig{
		Design:     fleetDesign(),
		Devices:    3,
		Heartbeats: 5,
		FrontEnd:   FleetFrontEndHTTP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 15 || res.WireCalls != 15 {
		t.Errorf("messages/wire = %d/%d, want 15/15", res.Messages, res.WireCalls)
	}
	if res.MsgsPerSec <= 0 || res.Elapsed <= 0 {
		t.Errorf("throughput not measured: %+v", res)
	}
}

// TestRunFleetLoadBatched smoke-runs the TCP front end with coalescing:
// wire calls shrink by the batch factor (rounded up per device).
func TestRunFleetLoadBatched(t *testing.T) {
	res, err := RunFleetLoad(FleetLoadConfig{
		Design:     fleetDesign(),
		Devices:    2,
		Heartbeats: 9,
		BatchSize:  4,
		FrontEnd:   FleetFrontEndTCP,
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 18 {
		t.Errorf("messages = %d, want 18", res.Messages)
	}
	// ceil(9/4) = 3 wire calls per device.
	if res.WireCalls != 6 {
		t.Errorf("wire calls = %d, want 6", res.WireCalls)
	}
}

// TestRunFleetLoadDefaults proves the zero config still runs one device
// through one heartbeat over HTTP.
func TestRunFleetLoadDefaults(t *testing.T) {
	res, err := RunFleetLoad(FleetLoadConfig{Design: fleetDesign()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 1 || res.WireCalls != 1 {
		t.Errorf("defaults = %+v, want 1 message over 1 wire call", res)
	}
}

func TestRunFleetLoadUnknownFrontEnd(t *testing.T) {
	_, err := RunFleetLoad(FleetLoadConfig{Design: fleetDesign(), FrontEnd: "carrier-pigeon"})
	if err == nil || !strings.Contains(err.Error(), "unknown front end") {
		t.Errorf("unknown front end = %v, want rejection", err)
	}
}
