package testbed

import (
	"testing"

	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/wal"
)

func stormDesign() core.DesignSpec {
	d := fleetDesign()
	d.Name = "share-storm"
	d.DelegationScopeAttenuation = true
	d.DelegationCascadeRevoke = true
	d.DelegationCheckAtUse = true
	return d
}

// TestShareStormPerRecordFsync is the headline delegation run: a
// share/revoke storm interleaved with owner and delegated control
// traffic, killed mid-run at seeded points under per-record fsync. The
// recovered lattice must be byte-identical to the storm-free reference
// and no acknowledged grant or revocation may be lost or resurrected.
func TestShareStormPerRecordFsync(t *testing.T) {
	res, err := RunShareStorm(ShareStormConfig{
		Design: stormDesign(), Ops: 120, KillPoints: 18, Seed: 11,
		Policy: wal.SyncEveryRecord,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 18 {
		t.Errorf("crashes = %d, want 18", res.Crashes)
	}
	if res.MaxLostAcked != 0 {
		t.Errorf("per-record fsync lost %d acknowledged delegation ops", res.MaxLostAcked)
	}
	if res.Replayed == 0 {
		t.Error("no records were ever replayed")
	}
	if res.Granted == 0 || res.Revoked == 0 {
		t.Errorf("storm too tame: %d grants, %d revocations", res.Granted, res.Revoked)
	}
}

// TestShareStormPermissiveWithCheckpoints runs the same storm against
// the permissive zero-value delegation posture (escalating
// re-delegations are accepted instead of refused, so the accept/reject
// split differs) with mid-run checkpoints and the persisted idempotency
// log. Determinism must hold regardless of policy: the reference
// executes the identical storm under the identical design.
func TestShareStormPermissiveWithCheckpoints(t *testing.T) {
	d := fleetDesign()
	d.Name = "share-storm-permissive"
	res, err := RunShareStorm(ShareStormConfig{
		Design: d, Ops: 120, KillPoints: 14, Seed: 12,
		Policy: wal.SyncEveryRecord, CheckpointEvery: 16, PersistIdempotency: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLostAcked != 0 {
		t.Errorf("per-record fsync lost %d acknowledged delegation ops", res.MaxLostAcked)
	}
	if res.Checkpoints == 0 {
		t.Error("no checkpoint completed")
	}
	if res.Granted == 0 {
		t.Error("no delegation was ever granted")
	}
}
