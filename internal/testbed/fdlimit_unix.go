//go:build unix

package testbed

import "syscall"

// EnsureFDLimit raises RLIMIT_NOFILE until at least need descriptors
// are available, and reports whether it got them. The connection-scale
// socket runs need two fds per connection (client and server end) plus
// listener/poller overhead; raising the hard limit needs privilege
// (CAP_SYS_RESOURCE), so the fallback takes whatever the current hard
// limit allows.
func EnsureFDLimit(need int) bool {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return false
	}
	want := uint64(need)
	if rl.Cur >= want {
		return true
	}
	raised := rl
	raised.Cur = want
	if raised.Max < want {
		raised.Max = want
	}
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &raised); err != nil && rl.Max > rl.Cur {
		raised.Cur, raised.Max = rl.Max, rl.Max
		_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &raised)
	}
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return false
	}
	return rl.Cur >= want
}
