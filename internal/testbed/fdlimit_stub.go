//go:build !unix

package testbed

// EnsureFDLimit is a no-op where RLIMIT_NOFILE does not exist.
func EnsureFDLimit(need int) bool { return true }
