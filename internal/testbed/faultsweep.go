package testbed

import (
	"errors"
	"fmt"
	"time"

	"github.com/iotbind/iotbind/internal/app"
	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/device"
	"github.com/iotbind/iotbind/internal/localnet"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/retry"
	"github.com/iotbind/iotbind/internal/transport"
)

// LossConfig parameterizes a binding-under-loss sweep: the full binding
// life cycle (register, login, setup, heartbeat, control round-trip,
// unbind) is run repeatedly against a cloud behind a seeded fault plane,
// at each injected failure rate, with retrying agents.
type LossConfig struct {
	// Design is the vendor design under test. It must support the
	// app-sent Unbind:(DevId,UserToken) form, since the life cycle ends
	// with the owner unbinding.
	Design core.DesignSpec
	// Rates are the injected failure rates to sweep (each is split evenly
	// between fail-before-delivery and fail-after-delivery).
	Rates []float64
	// Trials is the number of life cycles per rate.
	Trials int
	// Seed drives the fault plane and retry jitter; a given
	// (Seed, Design, Rates, Trials) is fully reproducible.
	Seed int64
	// MaxAttempts bounds deliveries per logical call (0 means the retry
	// default).
	MaxAttempts int
}

// LossPoint is one observation of the sweep.
type LossPoint struct {
	// FailureRate is the injected per-call failure probability.
	FailureRate float64
	// Trials and Succeeded count life cycles run and completed with the
	// fault-free final state.
	Trials, Succeeded int
	// SuccessRate is Succeeded/Trials.
	SuccessRate float64
	// InjectedFailures totals the faults the plane injected at this rate.
	InjectedFailures int
	// Deduplicated totals the redelivered Bind/Unbind requests the cloud
	// answered from its idempotency log at this rate — each one is a
	// retry that would have double-executed (or spuriously failed)
	// without deduplication.
	Deduplicated int64
}

// lifecycleState captures the checkpoints a trial is judged on.
type lifecycleState struct {
	boundState core.ShadowState // after setup + settle heartbeat
	boundUser  string
	finalState core.ShadowState // after the owner's unbind
	finalUser  string
	bindEvents int // EventBind count in the shadow trace
}

// RunBindingUnderLoss sweeps the binding life cycle across injected
// failure rates. A trial succeeds only if every life-cycle step completes
// (through retries) and the shadow's checkpoints — state-machine position,
// bound user, and the number of bind transitions — are identical to a
// fault-free run's: retries must never change the state a reliable
// network would have produced, and a bind must never apply twice.
func RunBindingUnderLoss(cfg LossConfig) ([]LossPoint, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	if !cfg.Design.SupportsUnbind(core.UnbindDevIDUserToken) {
		return nil, fmt.Errorf("testbed: loss sweep needs the Unbind:(DevId,UserToken) form in design %q", cfg.Design.Name)
	}

	// The fault-free reference: what a reliable network produces.
	want, ok, err := runLossTrial(cfg.Design, 0, cfg.Seed, cfg.MaxAttempts)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("testbed: fault-free life cycle failed for design %q", cfg.Design.Name)
	}

	points := make([]LossPoint, 0, len(cfg.Rates))
	for i, rate := range cfg.Rates {
		pt := LossPoint{FailureRate: rate, Trials: cfg.Trials}
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := cfg.Seed + int64(1+i*cfg.Trials+trial)
			got, completed, injected, deduped, err := runLossTrialObserved(cfg.Design, rate, seed, cfg.MaxAttempts)
			if err != nil {
				return nil, err
			}
			pt.InjectedFailures += injected
			pt.Deduplicated += deduped
			if completed && got == want {
				pt.Succeeded++
			}
		}
		pt.SuccessRate = float64(pt.Succeeded) / float64(pt.Trials)
		points = append(points, pt)
	}
	return points, nil
}

// runLossTrial runs one life cycle, reporting its checkpoints and whether
// every step completed. Errors are reserved for structural failures
// (invalid design, rig construction); a life cycle defeated by loss is
// (state, false, nil).
func runLossTrial(design core.DesignSpec, rate float64, seed int64, maxAttempts int) (lifecycleState, bool, error) {
	st, ok, _, _, err := runLossTrialObserved(design, rate, seed, maxAttempts)
	return st, ok, err
}

func runLossTrialObserved(design core.DesignSpec, rate float64, seed int64, maxAttempts int) (st lifecycleState, completed bool, injected int, deduped int64, err error) {
	clock := &Clock{t: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)}
	registry := cloud.NewRegistry()
	if err := registry.Add(cloud.DeviceRecord{
		ID:            DefaultDeviceID,
		FactorySecret: "factory-secret-" + DefaultDeviceID,
		Model:         design.Name,
	}); err != nil {
		return st, false, 0, 0, fmt.Errorf("testbed: %w", err)
	}
	svc, err := cloud.NewService(design, registry, cloud.WithClock(clock.Now))
	if err != nil {
		return st, false, 0, 0, fmt.Errorf("testbed: %w", err)
	}

	plane := transport.NewFaultPlane(seed,
		transport.WithFailBeforeRate(rate/2),
		transport.WithFailAfterRate(rate/2),
		transport.WithFaultClock(clock.Now, nil))

	home := localnet.NewNetwork("victim-home", DefaultHomeIP)
	stamped := transport.StampSource(svc, home.PublicIP())
	policy := retry.Policy{
		MaxAttempts: maxAttempts,
		BaseDelay:   retry.DefaultBaseDelay,
		MaxDelay:    retry.DefaultMaxDelay,
		Seed:        seed + 1,
		Sleep:       func(time.Duration) {}, // simulated time: no real waits
	}
	if policy.MaxAttempts <= 0 {
		policy.MaxAttempts = retry.DefaultMaxAttempts
	}

	dev, err := device.New(device.Config{
		ID:            DefaultDeviceID,
		FactorySecret: "factory-secret-" + DefaultDeviceID,
		LocalName:     "victim-device",
		Model:         design.Name,
	}, design, plane.Wrap(stamped, transport.PartyDevice),
		device.WithClock(clock.Now), device.WithRetry(policy))
	if err != nil {
		return st, false, 0, 0, fmt.Errorf("testbed: %w", err)
	}
	defer dev.Close()
	if err := home.Join(dev); err != nil {
		return st, false, 0, 0, fmt.Errorf("testbed: %w", err)
	}

	appPolicy := policy
	appPolicy.Seed = seed + 2
	victim, err := app.New(DefaultVictimUser, "pw-victim", design,
		plane.Wrap(stamped, transport.PartyApp), home, app.WithRetry(appPolicy))
	if err != nil {
		return st, false, 0, 0, fmt.Errorf("testbed: %w", err)
	}
	defer victim.Close()

	actions := userActions{dev: dev}
	shadow := func() (protocol.ShadowStateResponse, error) {
		// Read the shadow through the service directly: diagnostics are
		// not subject to the faulted network.
		return svc.ShadowState(protocol.ShadowStateRequest{DeviceID: DefaultDeviceID})
	}
	fail := func() (lifecycleState, bool, int, int64, error) {
		return st, false, plane.Failures(), svc.Stats().BindsDeduplicated + svc.Stats().UnbindsDeduplicated, nil
	}

	// Life cycle: account, login, setup (bind), settle, control, unbind.
	// Account creation has no idempotency key (only Bind/Unbind do), so a
	// redelivery whose first attempt was applied comes back ErrUserExists;
	// for this app that is success — the account it wanted now exists.
	if err := victim.RegisterAccount(); err != nil && !errors.Is(err, protocol.ErrUserExists) {
		return fail()
	}
	if err := victim.Login(); err != nil {
		return fail()
	}
	if err := victim.SetupDevice(dev.LocalName(), actions); err != nil {
		return fail()
	}
	clock.Advance(cloud.DefaultButtonWindow + time.Second)
	if err := dev.Heartbeat(); err != nil {
		return fail()
	}

	// Control must round-trip to the device's executed log. A command can
	// be drained by a heartbeat delivery whose response was lost — gone
	// like a real lossy downlink — so unacknowledged commands are
	// re-issued with fresh IDs, as real apps do.
	controlled := false
	for i := 0; i < 5 && !controlled; i++ {
		id := fmt.Sprintf("loss-probe-%d", i)
		if err := victim.Control(DefaultDeviceID, protocol.Command{ID: id, Name: "probe"}); err != nil {
			continue
		}
		_ = dev.Heartbeat()
		for _, c := range dev.Executed() {
			if c.ID == id {
				controlled = true
				break
			}
		}
	}
	if !controlled {
		return fail()
	}

	mid, err := shadow()
	if err != nil {
		return fail()
	}
	st.boundState = mid.State
	st.boundUser = mid.BoundUser

	if err := victim.Unbind(DefaultDeviceID); err != nil {
		return fail()
	}
	fin, err := shadow()
	if err != nil {
		return fail()
	}
	st.finalState = fin.State
	st.finalUser = fin.BoundUser
	for _, tr := range svc.ShadowTrace(DefaultDeviceID) {
		if tr.Event == core.EventBind {
			st.bindEvents++
		}
	}
	return st, true, plane.Failures(), svc.Stats().BindsDeduplicated + svc.Stats().UnbindsDeduplicated, nil
}
