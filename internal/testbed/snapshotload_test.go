package testbed

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"github.com/iotbind/iotbind/internal/cloud"
)

// TestSnapshotUnderFleetLoad captures snapshots concurrently with a
// live fleet-load run and proves every capture is usable: per-device
// consistent (each shadow copied under its own lock parses and
// restores), and restorable into a fresh service whose re-encoded state
// is byte-identical to the capture.
func TestSnapshotUnderFleetLoad(t *testing.T) {
	var (
		mu    sync.Mutex
		snaps []cloud.Snapshot
		stop  = make(chan struct{})
		done  = make(chan struct{})
	)
	cfg := FleetLoadConfig{
		Design:       fleetDesign(),
		Devices:      8,
		Heartbeats:   40,
		ReadingEvery: 4,
		Workers:      4,
		OnService: func(svc *cloud.Service) {
			go func() {
				defer close(done)
				for {
					select {
					case <-stop:
						return
					default:
					}
					snap := svc.Snapshot()
					mu.Lock()
					snaps = append(snaps, snap)
					mu.Unlock()
					time.Sleep(time.Millisecond)
				}
			}()
		},
	}
	res, err := RunFleetLoad(cfg)
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != cfg.Devices*cfg.Heartbeats {
		t.Fatalf("load run delivered %d messages, want %d", res.Messages, cfg.Devices*cfg.Heartbeats)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots captured during the run")
	}

	// Every concurrent capture must restore into a fresh service and
	// re-encode identically (modulo the restored service's own clock).
	registry := cloud.NewRegistry()
	for _, ss := range snaps[len(snaps)-1].Shadows {
		if err := registry.Add(cloud.DeviceRecord{ID: ss.DeviceID, FactorySecret: "fs-" + ss.DeviceID}); err != nil {
			t.Fatal(err)
		}
	}
	for i, snap := range snaps {
		for _, ss := range snap.Shadows {
			if len(ss.Readings) > cfg.Heartbeats {
				t.Fatalf("capture %d: device %s carries %d readings, more than ever sent", i, ss.DeviceID, len(ss.Readings))
			}
		}
		svc2, err := cloud.NewService(cfg.Design, registry)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc2.Restore(snap); err != nil {
			t.Fatalf("capture %d not restorable: %v", i, err)
		}
		restored := svc2.Snapshot()
		restored.TakenAt = snap.TakenAt
		var want, got bytes.Buffer
		if err := cloud.EncodeSnapshot(&want, snap); err != nil {
			t.Fatal(err)
		}
		if err := cloud.EncodeSnapshot(&got, restored); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("capture %d round-trips dirty:\ncaptured:\n%s\nrestored:\n%s", i, want.Bytes(), got.Bytes())
		}
	}
}
