package testbed

import (
	"runtime"
	"testing"

	"github.com/iotbind/iotbind/internal/binapi"
)

// connSmokeConns keeps the unit-test scale modest; the 100k-connection
// headline run lives in the root benchmark suite (BenchmarkConnLoad)
// and `make conn-smoke`.
func connSmokeConns() int {
	if raceEnabled {
		return 300
	}
	return 2000
}

func TestConnLoadPipe(t *testing.T) {
	conns := connSmokeConns()
	res, err := RunConnLoad(ConnLoadConfig{Conns: conns, MsgsPerConn: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != conns*3 {
		t.Fatalf("messages = %d, want %d", res.Messages, conns*3)
	}
	if res.MsgsPerSec <= 0 || res.P99Micros <= 0 || res.BytesPerConn <= 0 {
		t.Fatalf("degenerate metrics: %+v", res)
	}
	// The architecture claim: goroutines scale with workers+stripes, not
	// connections. Allow generous slack for test-runner goroutines.
	if limit := res.Conns/4 + 200; res.Goroutines >= limit {
		t.Fatalf("goroutines = %d with %d pipe conns (stripes=%d): per-connection goroutines crept in",
			res.Goroutines, res.Conns, res.Stripes)
	}
}

func TestConnLoadSocket(t *testing.T) {
	conns := 200
	if raceEnabled {
		conns = 50
	}
	res, err := RunConnLoad(ConnLoadConfig{
		Conns: conns, MsgsPerConn: 3, Mode: ConnLoadSocket,
		Workers: 4 * runtime.GOMAXPROCS(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != conns*3 {
		t.Fatalf("messages = %d, want %d", res.Messages, conns*3)
	}
	if res.MsgsPerSec <= 0 {
		t.Fatalf("degenerate metrics: %+v", res)
	}
}

// TestConnLoadSocketEpoll is the raw-epoll readiness smoke: real
// sockets, and the server's own goroutine count must stay at
// stripes + pollers — not O(conns) — while every connection is open.
func TestConnLoadSocketEpoll(t *testing.T) {
	if !binapi.EpollSupported() {
		t.Skip("raw-epoll readiness source requires linux")
	}
	conns := 400
	if raceEnabled {
		conns = 100
	}
	res, err := RunConnLoad(ConnLoadConfig{
		Conns: conns, MsgsPerConn: 3, Mode: ConnLoadSocket,
		Workers:   4 * runtime.GOMAXPROCS(0),
		Readiness: binapi.ReadinessEpoll,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Readiness != "epoll" {
		t.Fatalf("readiness = %q, want epoll", res.Readiness)
	}
	if res.Messages != conns*3 {
		t.Fatalf("messages = %d, want %d", res.Messages, conns*3)
	}
	// The tentpole claim: server goroutines = stripes + one poller per
	// active stripe, regardless of connection count.
	if limit := 2*res.Stripes + 2; res.ServerGoroutines > limit {
		t.Fatalf("server goroutines = %d with %d epoll conns (stripes=%d): per-connection goroutines crept in",
			res.ServerGoroutines, res.Conns, res.Stripes)
	}
}

// TestConnLoadSocketPump pins the fallback readiness source and checks
// its server-goroutine accounting scales with connections (one pump
// goroutine each) — the before-side of the epoll comparison.
func TestConnLoadSocketPump(t *testing.T) {
	conns := 100
	if raceEnabled {
		conns = 40
	}
	res, err := RunConnLoad(ConnLoadConfig{
		Conns: conns, MsgsPerConn: 2, Mode: ConnLoadSocket,
		Workers:   2 * runtime.GOMAXPROCS(0),
		Readiness: binapi.ReadinessPump,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Readiness != "pump" {
		t.Fatalf("readiness = %q, want pump", res.Readiness)
	}
	if res.ServerGoroutines < conns {
		t.Fatalf("server goroutines = %d with %d pump conns, want ≥ conns", res.ServerGoroutines, conns)
	}
}
