package testbed

import (
	"runtime"
	"testing"
)

// connSmokeConns keeps the unit-test scale modest; the 100k-connection
// headline run lives in the root benchmark suite (BenchmarkConnLoad)
// and `make conn-smoke`.
func connSmokeConns() int {
	if raceEnabled {
		return 300
	}
	return 2000
}

func TestConnLoadPipe(t *testing.T) {
	conns := connSmokeConns()
	res, err := RunConnLoad(ConnLoadConfig{Conns: conns, MsgsPerConn: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != conns*3 {
		t.Fatalf("messages = %d, want %d", res.Messages, conns*3)
	}
	if res.MsgsPerSec <= 0 || res.P99Micros <= 0 || res.BytesPerConn <= 0 {
		t.Fatalf("degenerate metrics: %+v", res)
	}
	// The architecture claim: goroutines scale with workers+stripes, not
	// connections. Allow generous slack for test-runner goroutines.
	if limit := res.Conns/4 + 200; res.Goroutines >= limit {
		t.Fatalf("goroutines = %d with %d pipe conns (stripes=%d): per-connection goroutines crept in",
			res.Goroutines, res.Conns, res.Stripes)
	}
}

func TestConnLoadSocket(t *testing.T) {
	conns := 200
	if raceEnabled {
		conns = 50
	}
	res, err := RunConnLoad(ConnLoadConfig{
		Conns: conns, MsgsPerConn: 3, Mode: ConnLoadSocket,
		Workers: 4 * runtime.GOMAXPROCS(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != conns*3 {
		t.Fatalf("messages = %d, want %d", res.Messages, conns*3)
	}
	if res.MsgsPerSec <= 0 {
		t.Fatalf("degenerate metrics: %+v", res)
	}
}
