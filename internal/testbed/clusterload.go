package testbed

import (
	"bytes"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/cluster"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/retry"
	"github.com/iotbind/iotbind/internal/transport"
	"github.com/iotbind/iotbind/internal/wal"
)

// ClusterLoadConfig parameterizes a multi-node kill-over run: a device
// fleet partitioned across N cluster nodes by the consistent-hash ring,
// driven through the router by retrying workers while primaries are
// killed and their replicas promoted mid-run.
type ClusterLoadConfig struct {
	// Dir is the root directory; node k's stores live in Dir/node-k.
	Dir string
	// Design is the binding design (default ClusterLabDesign — see its
	// comment for why the cluster harness wants a token-free design).
	Design core.DesignSpec
	// Nodes is the cluster size (default 3).
	Nodes int
	// Devices is the fleet size (default 3 per node).
	Devices int
	// Users is how many accounts own the fleet, round-robin (default 2).
	Users int
	// Heartbeats per device (default 10), all idempotency-keyed so every
	// one is a logged, shipped mutation.
	Heartbeats int
	// ReadingEvery makes every Nth heartbeat carry a sensor reading
	// (0 disables).
	ReadingEvery int
	// Batches is how many cross-device status batches each worker sends
	// after the per-device phase — batches mixing ring owners exercise
	// the router's split-and-stitch path (default 2).
	Batches int
	// Workers bounds concurrent drivers (default 4, capped at Devices).
	Workers int
	// Kills is how many primaries to kill mid-run (nodes 0..Kills-1,
	// spread across the heartbeat phase). Must be <= Nodes.
	Kills int
	// AckAfterReplicate acknowledges a mutation only after its WAL
	// record applied on the replica: kills lose nothing acked, and the
	// run verifies the merged final state byte-identically against a
	// single-node reference. Off, acked-but-unshipped operations die
	// with the killed primary and the state check is skipped (the
	// reference legitimately has operations the cluster lost).
	AckAfterReplicate bool
	// WALShards per store (default 4).
	WALShards int
	// WALPolicy is each store's fsync policy (default wal.SyncOff — the
	// kill model is process loss, not host loss, so the interesting
	// durability bound is replication, not fsync).
	WALPolicy wal.SyncPolicy
}

// ClusterLoadResult reports one kill-over run.
type ClusterLoadResult struct {
	// Messages is the number of status messages delivered (heartbeats
	// plus batch items), Binds the accepted bindings.
	Messages int
	Binds    int
	// Kills and Promotions count the failovers performed (always equal
	// on success).
	Kills      int
	Promotions int
	// LostAcked is the per-kill count of acknowledged operations the
	// replica never received; MaxLostAcked is its maximum. Zero under
	// ack-after-replicate.
	LostAcked    []uint64
	MaxLostAcked uint64
	// StateVerified reports that the merged cluster state was compared
	// byte-for-byte against the single-node reference (ack-after-
	// replicate runs only).
	StateVerified bool
	// Elapsed covers the traffic phase; MsgsPerSec is Messages/Elapsed.
	Elapsed    time.Duration
	MsgsPerSec float64
}

// ClusterLabDesign is the binding design the cluster harness runs:
// device-ID authentication and device-initiated ACL binding
// authenticated by (UserID, password). Deliberately token-free — a
// token verifies only on the node that issued it, so a token-bearing
// design would pin every user to one node (DESIGN.md §10 documents the
// affinity limitation); credential-carrying binds route anywhere, which
// is what lets a cluster harness compare merged state against one
// reference node.
func ClusterLabDesign() core.DesignSpec {
	return core.DesignSpec{
		Name:                 "cluster-lab",
		DeviceAuth:           core.AuthDevID,
		Binding:              core.BindACLDevice,
		UnbindForms:          []core.UnbindForm{core.UnbindDevIDAlone},
		CheckBoundUserOnBind: true,
	}
}

// RunClusterLoad drives the configured cluster and reports the
// failover outcome. Under AckAfterReplicate the merged final state —
// per-device shadows from each device's ring owner, accounts checked
// identical across nodes — must encode byte-for-byte as a single
// in-memory reference cloud fed the same operations (activity counters
// zeroed on both sides: retries and sub-batch splitting legitimately
// count wire-level activity differently).
func RunClusterLoad(cfg ClusterLoadConfig) (ClusterLoadResult, error) {
	var res ClusterLoadResult
	if cfg.Dir == "" {
		return res, fmt.Errorf("testbed: cluster load: Dir is required")
	}
	if cfg.Design.Name == "" {
		cfg.Design = ClusterLabDesign()
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Devices <= 0 {
		cfg.Devices = 3 * cfg.Nodes
	}
	if cfg.Users <= 0 {
		cfg.Users = 2
	}
	if cfg.Heartbeats <= 0 {
		cfg.Heartbeats = 10
	}
	if cfg.Batches < 0 {
		cfg.Batches = 0
	} else if cfg.Batches == 0 {
		cfg.Batches = 2
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Workers > cfg.Devices {
		cfg.Workers = cfg.Devices
	}
	if cfg.Kills < 0 || cfg.Kills > cfg.Nodes {
		return res, fmt.Errorf("testbed: cluster load: Kills %d outside [0, %d]", cfg.Kills, cfg.Nodes)
	}
	if cfg.WALShards <= 0 {
		cfg.WALShards = 4
	}

	// One frozen clock everywhere: liveness state (lastSeen) becomes a
	// constant, so the merged compare is exact even though cluster and
	// reference apply operations at different wall instants.
	clock := &Clock{t: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)}

	registry := cloud.NewRegistry()
	ids := make([]string, cfg.Devices)
	for i := range ids {
		ids[i] = fmt.Sprintf("AA:BB:CC:%02X:%02X:%02X", (i>>16)&0xff, (i>>8)&0xff, i&0xff)
		if err := registry.Add(cloud.DeviceRecord{
			ID:            ids[i],
			FactorySecret: "factory-secret-" + ids[i],
			Model:         cfg.Design.Name,
		}); err != nil {
			return res, fmt.Errorf("testbed: cluster load: %w", err)
		}
	}

	// The cluster: N nodes, each a primary + warm replica pair, behind
	// Switchables so failover is invisible to the router and workers.
	names := make([]string, cfg.Nodes)
	nodes := make([]*cluster.Node, cfg.Nodes)
	members := make(map[string]*transport.Switchable, cfg.Nodes)
	serving := make([]*cloud.Durable, cfg.Nodes) // the store behind each name right now
	for k := range nodes {
		names[k] = fmt.Sprintf("node-%d", k)
		n, err := cluster.NewNode(cluster.NodeConfig{
			Name:              names[k],
			Dir:               filepath.Join(cfg.Dir, names[k]),
			Design:            cfg.Design,
			Registry:          registry,
			Clock:             clock.Now,
			WALShards:         cfg.WALShards,
			WAL:               wal.Options{Policy: cfg.WALPolicy},
			AckAfterReplicate: cfg.AckAfterReplicate,
		})
		if err != nil {
			return res, fmt.Errorf("testbed: cluster load: %w", err)
		}
		defer n.Close()
		nodes[k] = n
		members[names[k]] = transport.NewSwitchable(n)
		serving[k] = n.Primary()
	}
	ring, err := cluster.NewRing(names, 0)
	if err != nil {
		return res, fmt.Errorf("testbed: cluster load: %w", err)
	}
	router, err := cluster.NewRouter(ring, members)
	if err != nil {
		return res, fmt.Errorf("testbed: cluster load: %w", err)
	}
	// The retry wrapper is what carries workers across a failover
	// window: ErrNodeDown and ErrNotPrimary carry no wire code, so the
	// default classifier retries them until the promoted replica is
	// swapped in. The sleep yields instead of waiting — the failover
	// completes in-process, not on a timer.
	front := retry.Wrap(router, retry.Policy{
		MaxAttempts: 200,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Millisecond,
		Seed:        1,
		Sleep:       func(time.Duration) { runtime.Gosched() },
	})
	defer front.Close()

	// The single-node reference: an in-memory cloud fed every operation
	// the cluster acknowledges. Same registry contents, same design,
	// same frozen clock.
	refReg := cloud.NewRegistry()
	for _, id := range ids {
		if err := refReg.Add(cloud.DeviceRecord{
			ID: id, FactorySecret: "factory-secret-" + id, Model: cfg.Design.Name,
		}); err != nil {
			return res, fmt.Errorf("testbed: cluster load: %w", err)
		}
	}
	ref, err := cloud.NewService(cfg.Design, refReg, cloud.WithClock(clock.Now))
	if err != nil {
		return res, fmt.Errorf("testbed: cluster load: %w", err)
	}

	// Accounts exist everywhere before any traffic (and before any kill:
	// a broadcast retried across a failover would hit user-exists on the
	// nodes that already accepted it).
	userOf := func(dev int) (string, string) {
		k := dev % cfg.Users
		return fmt.Sprintf("user-%d@cluster.example", k), fmt.Sprintf("pw-%d", k)
	}
	for k := 0; k < cfg.Users; k++ {
		id, pw := fmt.Sprintf("user-%d@cluster.example", k), fmt.Sprintf("pw-%d", k)
		if err := front.RegisterUser(protocol.RegisterUserRequest{UserID: id, Password: pw}); err != nil {
			return res, fmt.Errorf("testbed: cluster load: register user: %w", err)
		}
		if err := ref.RegisterUser(protocol.RegisterUserRequest{UserID: id, Password: pw}); err != nil {
			return res, fmt.Errorf("testbed: cluster load: reference register user: %w", err)
		}
	}

	// Kill schedule: the worker whose heartbeat crosses threshold k
	// performs kill k inline — Kill drains in-flight requests, the
	// replica is promoted and swapped in, and every blocked retry lands
	// on it.
	totalHB := cfg.Devices * cfg.Heartbeats
	var (
		hbCount   atomic.Int64
		killOnce  = make([]sync.Once, cfg.Kills)
		killMu    sync.Mutex
		lostAcked []uint64
	)
	maybeKill := func() error {
		done := hbCount.Add(1)
		for k := 0; k < cfg.Kills; k++ {
			threshold := int64((k + 1) * totalHB / (cfg.Kills + 1))
			if done != threshold {
				continue
			}
			var kerr error
			killOnce[k].Do(func() {
				lost, err := nodes[k].Kill()
				if err != nil {
					kerr = err
					return
				}
				promoted, err := nodes[k].Promote()
				if err != nil {
					kerr = err
					return
				}
				members[names[k]].Swap(promoted)
				killMu.Lock()
				lostAcked = append(lostAcked, lost)
				serving[k] = promoted
				killMu.Unlock()
			})
			if kerr != nil {
				return fmt.Errorf("testbed: cluster load: kill node-%d: %w", k, kerr)
			}
		}
		return nil
	}

	var (
		errMu    sync.Mutex
		firstErr error
		messages atomic.Int64
		binds    atomic.Int64
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	// refMu serializes reference applies. The reference is thread-safe,
	// but serializing keeps its stats deterministic if a future config
	// compares them; per-device ordering is already guaranteed by each
	// device belonging to one worker.
	var refMu sync.Mutex
	applyRef := func(do func() error) error {
		refMu.Lock()
		defer refMu.Unlock()
		return do()
	}

	// forEachSlice fans the device range out over the workers and waits.
	per := (cfg.Devices + cfg.Workers - 1) / cfg.Workers
	forEachSlice := func(fn func(w, lo, hi int)) {
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			lo, hi := w*per, (w+1)*per
			if hi > cfg.Devices {
				hi = cfg.Devices
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				fn(w, lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
	}

	// Phase 1 — registration and binding, before any kill. Setup state
	// is the baseline both modes need on every replica: binds that fail
	// business-wise (unknown account on a freshly promoted replica)
	// would pollute the loss accounting, whose subject is the
	// steady-state traffic below.
	forEachSlice(func(w, lo, hi int) {
		for d := lo; d < hi; d++ {
			id := ids[d]
			if _, err := front.HandleStatus(protocol.StatusRequest{
				Kind: protocol.StatusRegister, DeviceID: id,
				Firmware: "1.0", Model: cfg.Design.Name,
			}); err != nil {
				fail(fmt.Errorf("register %s: %w", id, err))
				return
			}
			user, pw := userOf(d)
			if _, err := front.HandleBind(protocol.BindRequest{
				DeviceID: id, UserID: user, UserPassword: pw,
				IdempotencyKey: fmt.Sprintf("bind-%d", d),
			}); err != nil {
				fail(fmt.Errorf("bind %s: %w", id, err))
				return
			}
			if err := applyRef(func() error {
				if _, err := ref.HandleStatus(protocol.StatusRequest{
					Kind: protocol.StatusRegister, DeviceID: id,
					Firmware: "1.0", Model: cfg.Design.Name,
				}); err != nil {
					return err
				}
				_, err := ref.HandleBind(protocol.BindRequest{
					DeviceID: id, UserID: user, UserPassword: pw,
					IdempotencyKey: fmt.Sprintf("bind-%d", d),
				})
				return err
			}); err != nil {
				fail(fmt.Errorf("reference setup %s: %w", id, err))
				return
			}
			binds.Add(1)
		}
	})
	if firstErr != nil {
		return res, fmt.Errorf("testbed: cluster load: %w", firstErr)
	}
	if !cfg.AckAfterReplicate {
		// Async mode ships the setup baseline once, so a promotion
		// inherits every account and binding and the traffic below keeps
		// flowing; what a kill loses is then purely steady-state traffic
		// acked after this point.
		for k, n := range nodes {
			if err := n.CatchUp(); err != nil {
				return res, fmt.Errorf("testbed: cluster load: baseline ship node-%d: %w", k, err)
			}
		}
	}

	// Phase 2 — steady-state heartbeats with mid-run kills, then the
	// cross-owner batches.
	start := time.Now()
	forEachSlice(func(w, lo, hi int) {
		for d := lo; d < hi; d++ {
			id := ids[d]
			for n := 0; n < cfg.Heartbeats; n++ {
				req := protocol.StatusRequest{
					Kind: protocol.StatusHeartbeat, DeviceID: id,
					IdempotencyKey: fmt.Sprintf("hb-%d-%d", d, n),
				}
				if cfg.ReadingEvery > 0 && n%cfg.ReadingEvery == 0 {
					req.Readings = []protocol.Reading{{Name: "power_w", Value: float64(n), At: clock.Now()}}
				}
				if _, err := front.HandleStatus(req); err != nil {
					fail(fmt.Errorf("heartbeat %s/%d: %w", id, n, err))
					return
				}
				if err := applyRef(func() error {
					_, err := ref.HandleStatus(req)
					return err
				}); err != nil {
					fail(fmt.Errorf("reference heartbeat %s/%d: %w", id, n, err))
					return
				}
				messages.Add(1)
				if err := maybeKill(); err != nil {
					fail(err)
					return
				}
			}
		}
		// Cross-device batches over the worker's whole slice: items
		// span ring owners, so the router splits and restitches.
		for b := 0; b < cfg.Batches; b++ {
			var req protocol.StatusBatchRequest
			for d := lo; d < hi; d++ {
				req.Items = append(req.Items, protocol.StatusRequest{
					Kind: protocol.StatusHeartbeat, DeviceID: ids[d],
					IdempotencyKey: fmt.Sprintf("batch-%d-%d-%d", w, b, d),
				})
			}
			resp, err := front.HandleStatusBatch(req)
			if err != nil {
				fail(fmt.Errorf("batch %d/%d: %w", w, b, err))
				return
			}
			if err := resp.FirstError(); err != nil {
				fail(fmt.Errorf("batch %d/%d item: %w", w, b, err))
				return
			}
			if err := applyRef(func() error {
				rresp, err := ref.HandleStatusBatch(req)
				if err != nil {
					return err
				}
				return rresp.FirstError()
			}); err != nil {
				fail(fmt.Errorf("reference batch %d/%d: %w", w, b, err))
				return
			}
			messages.Add(int64(len(req.Items)))
		}
	})
	res.Elapsed = time.Since(start)
	if firstErr != nil {
		return res, fmt.Errorf("testbed: cluster load: %w", firstErr)
	}

	res.Messages = int(messages.Load())
	res.Binds = int(binds.Load())
	res.Kills = len(lostAcked)
	res.Promotions = len(lostAcked)
	res.LostAcked = lostAcked
	for _, lost := range lostAcked {
		if lost > res.MaxLostAcked {
			res.MaxLostAcked = lost
		}
	}
	if res.Elapsed > 0 {
		res.MsgsPerSec = float64(res.Messages) / res.Elapsed.Seconds()
	}
	if res.Kills != cfg.Kills {
		return res, fmt.Errorf("testbed: cluster load: %d kills fired, want %d (heartbeat thresholds missed)", res.Kills, cfg.Kills)
	}

	if cfg.AckAfterReplicate {
		if res.MaxLostAcked != 0 {
			return res, fmt.Errorf("testbed: cluster load: lost %d acked operations under ack-after-replicate", res.MaxLostAcked)
		}
		if err := compareClusterState(ring, names, serving, ids, ref); err != nil {
			return res, err
		}
		res.StateVerified = true
	}
	return res, nil
}

// compareClusterState builds the merged cluster snapshot — per-device
// shadows from each device's ring owner, accounts from node 0 after
// checking every node agrees — and compares its encoding byte-for-byte
// against the reference's. Stats are zeroed on both sides: retries and
// sub-batch splitting count wire activity differently by design.
func compareClusterState(ring *cluster.Ring, names []string, serving []*cloud.Durable, ids []string, ref *cloud.Service) error {
	snaps := make(map[string]cloud.Snapshot, len(names))
	for k, name := range names {
		snaps[name] = serving[k].Snapshot()
	}
	base := snaps[names[0]]
	for _, name := range names[1:] {
		s := snaps[name]
		if len(s.Accounts) != len(base.Accounts) {
			return fmt.Errorf("testbed: cluster load: %s holds %d accounts, %s holds %d",
				name, len(s.Accounts), names[0], len(base.Accounts))
		}
		for u, h := range base.Accounts {
			if s.Accounts[u] != h {
				return fmt.Errorf("testbed: cluster load: account %s differs between %s and %s", u, names[0], name)
			}
		}
		if len(s.Tokens) != 0 {
			return fmt.Errorf("testbed: cluster load: %s issued %d tokens under a token-free design", name, len(s.Tokens))
		}
	}

	shadowByDevice := make(map[string]cloud.ShadowSnapshot)
	for name, s := range snaps {
		for _, sh := range s.Shadows {
			if owner := ring.Owner(sh.DeviceID); owner != name {
				return fmt.Errorf("testbed: cluster load: %s holds shadow for %s owned by %s", name, sh.DeviceID, owner)
			}
			shadowByDevice[sh.DeviceID] = sh
		}
	}
	merged := base
	merged.Stats = cloud.Stats{}
	merged.Shadows = nil
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	for _, id := range sorted {
		sh, ok := shadowByDevice[id]
		if !ok {
			return fmt.Errorf("testbed: cluster load: no node holds a shadow for %s", id)
		}
		merged.Shadows = append(merged.Shadows, sh)
	}

	refSnap := ref.Snapshot()
	refSnap.Stats = cloud.Stats{}

	var want, got bytes.Buffer
	if err := cloud.EncodeSnapshot(&want, refSnap); err != nil {
		return fmt.Errorf("testbed: cluster load: %w", err)
	}
	if err := cloud.EncodeSnapshot(&got, merged); err != nil {
		return fmt.Errorf("testbed: cluster load: %w", err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		return fmt.Errorf("testbed: cluster load: merged cluster state differs from single-node reference:\nreference:\n%s\nmerged:\n%s",
			want.Bytes(), got.Bytes())
	}
	return nil
}
