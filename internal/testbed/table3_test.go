package testbed

import (
	"testing"

	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/vendors"
)

// TestTable3MatchesPaper is the headline reproduction: the full attack
// suite, launched live against each of the ten emulated vendor clouds,
// must reproduce the paper's Table III cell for cell.
func TestTable3MatchesPaper(t *testing.T) {
	for _, p := range vendors.Profiles() {
		p := p
		t.Run(p.Vendor, func(t *testing.T) {
			vr, err := EvaluateVendor(p)
			if err != nil {
				t.Fatalf("evaluate: %v", err)
			}
			if !MatchesPaper(vr.Row, p.Paper) {
				t.Errorf("measured row does not match the paper:\n  measured:  A1=%v A2=%v A3=%v A4=%v\n  published: A1=%v A2=%v A3=%v A4=%v",
					vr.Row.A1, vr.Row.A2, vr.Row.A3, vr.Row.A4,
					p.Paper.A1, p.Paper.A2, p.Paper.A3, p.Paper.A4)
				for _, r := range vr.Results {
					t.Logf("  %-5v %-4v %s", r.Variant, r.Outcome, r.Detail)
				}
			}
		})
	}
}

// TestSecureDesignResistsAllAttacks checks the paper's Section IV
// assessment: the capability-based reference design defeats every attack
// class.
func TestSecureDesignResistsAllAttacks(t *testing.T) {
	for _, p := range []vendors.Profile{vendors.SecureReference(), vendors.RecommendedPractice()} {
		p := p
		t.Run(p.Design.Name, func(t *testing.T) {
			results, err := EvaluateAll(p.Design)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range results {
				if r.Outcome.Succeeded() {
					t.Errorf("%v succeeded against %s: %s", r.Variant, p.Design.Name, r.Detail)
				}
			}
		})
	}
}

// TestWorstCaseDesignIsBroken checks that the strawman combining every
// flawed choice is broken in every attack class.
func TestWorstCaseDesignIsBroken(t *testing.T) {
	results, err := EvaluateAll(vendors.WorstCase().Design)
	if err != nil {
		t.Fatal(err)
	}
	byClass := make(map[core.AttackClass]bool)
	for _, r := range results {
		if r.Outcome.Succeeded() {
			byClass[r.Variant.Class()] = true
		}
	}
	for _, class := range []core.AttackClass{
		core.A1DataInjectionStealing,
		core.A3DeviceUnbinding,
		core.A4DeviceHijacking,
	} {
		if !byClass[class] {
			t.Errorf("no %v variant succeeded against the worst-case design", class)
			for _, r := range results {
				t.Logf("  %-5v %-4v %s", r.Variant, r.Outcome, r.Detail)
			}
		}
	}
	// A2 specifically fails on the worst case because replace-on-bind
	// means occupation cannot stick — the same quirk that protects
	// device #3.
	for _, r := range results {
		if r.Variant == core.VariantA2 && r.Outcome.Succeeded() {
			t.Error("A2 succeeded despite replace-on-bind semantics")
		}
	}
}

// TestVendorProfilesAreValid checks every shipped profile validates and
// builds a working ID generator.
func TestVendorProfilesAreValid(t *testing.T) {
	all := append(vendors.Profiles(), vendors.SecureReference(), vendors.RecommendedPractice(), vendors.WorstCase())
	for _, p := range all {
		if err := p.Design.Validate(); err != nil {
			t.Errorf("%s: design invalid: %v", p.Design.Name, err)
		}
		gen, err := p.IDs.Generator()
		if err != nil {
			t.Errorf("%s: ID generator: %v", p.Design.Name, err)
			continue
		}
		id, err := gen.Generate(1)
		if err != nil || id == "" {
			t.Errorf("%s: Generate(1) = %q, %v", p.Design.Name, id, err)
		}
	}
	if len(vendors.Profiles()) != 10 {
		t.Errorf("Profiles() has %d rows, want 10", len(vendors.Profiles()))
	}
}

// TestVendorSetupFlowsWork checks the legitimate setup path succeeds for
// every vendor design — no false positives from a broken baseline.
func TestVendorSetupFlowsWork(t *testing.T) {
	all := append(vendors.Profiles(), vendors.SecureReference(), vendors.RecommendedPractice(), vendors.WorstCase())
	for _, p := range all {
		p := p
		t.Run(p.Design.Name, func(t *testing.T) {
			tb, err := New(p.Design)
			if err != nil {
				t.Fatal(err)
			}
			if err := tb.SetupVictim(); err != nil {
				t.Fatalf("setup: %v", err)
			}
			if !tb.VictimHasControl() {
				t.Error("victim has no control after setup")
			}
		})
	}
}

func TestByVendor(t *testing.T) {
	p, ok := vendors.ByVendor("TP-LINK")
	if !ok || p.Number != 8 {
		t.Errorf("ByVendor(TP-LINK) = %+v, %v", p.Number, ok)
	}
	if _, ok := vendors.ByVendor("Nonesuch"); ok {
		t.Error("ByVendor(Nonesuch) found a profile")
	}
}

// TestEvaluateVendorsMatchesSequential: the concurrent Table III
// regeneration reproduces the sequential sweep row for row.
func TestEvaluateVendorsMatchesSequential(t *testing.T) {
	profiles := vendors.Profiles()
	got, err := EvaluateVendors(profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(profiles) {
		t.Fatalf("EvaluateVendors returned %d rows, want %d", len(got), len(profiles))
	}
	for i, p := range profiles {
		want, err := EvaluateVendor(p)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Profile.Vendor != p.Vendor {
			t.Errorf("row %d is vendor %s, want %s (order must match input)", i, got[i].Profile.Vendor, p.Vendor)
		}
		if !MatchesPaper(got[i].Row, want.Row) {
			t.Errorf("vendor %s: concurrent row %+v != sequential row %+v", p.Vendor, got[i].Row, want.Row)
		}
	}
}
