package testbed

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/retry"
	"github.com/iotbind/iotbind/internal/transport"
	"github.com/iotbind/iotbind/internal/wal"
)

func crashDesign() core.DesignSpec {
	d := fleetDesign()
	d.Name = "crash-recovery"
	return d
}

// TestCrashRecoveryGroupedFsync is the headline run: 20+ seeded
// kill-points under the grouped fsync policy, every recovery
// byte-identical to the never-crashed reference. Grouped fsync may lose
// acknowledged-but-unsynced operations to drop-style crashes; the
// harness re-executes them deterministically and the final state still
// matches.
func TestCrashRecoveryGroupedFsync(t *testing.T) {
	res, err := RunCrashRecovery(CrashRecoveryConfig{
		Design: crashDesign(), Ops: 80, KillPoints: 24, Seed: 1,
		Policy: wal.SyncGrouped,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 24 {
		t.Errorf("crashes = %d, want 24", res.Crashes)
	}
	if len(res.StagesHit) < 3 {
		t.Errorf("kill-points landed on only %d distinct WAL stages: %v", len(res.StagesHit), res.StagesHit)
	}
	if res.TornTails == 0 {
		t.Error("no recovery saw a torn tail; kill schedule too tame")
	}
	if res.Replayed == 0 {
		t.Error("no records were ever replayed")
	}
}

// TestCrashRecoveryPerRecordFsync pins the strong policy: fsync on
// every append means no acknowledged operation is ever lost, at any
// kill-point.
func TestCrashRecoveryPerRecordFsync(t *testing.T) {
	res, err := RunCrashRecovery(CrashRecoveryConfig{
		Design: crashDesign(), Ops: 60, KillPoints: 20, Seed: 2,
		Policy: wal.SyncEveryRecord,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 20 {
		t.Errorf("crashes = %d, want 20", res.Crashes)
	}
	if res.MaxLostAcked != 0 {
		t.Errorf("per-record fsync lost %d acknowledged ops", res.MaxLostAcked)
	}
}

// TestCrashRecoveryShardedPerRecord spreads the workload across eight
// devices so records land on multiple WAL shards, and the shared kill
// schedule crashes individual shard logs independently — one shard's
// tail tears while its siblings stay healthy. Per-record fsync must
// still lose zero acknowledged operations, and the recovered state must
// stay byte-identical to the never-crashed reference, with the
// per-shard watermark vector as the resume oracle.
func TestCrashRecoveryShardedPerRecord(t *testing.T) {
	res, err := RunCrashRecovery(CrashRecoveryConfig{
		Design: crashDesign(), Ops: 80, Devices: 8, KillPoints: 24, Seed: 4,
		Policy: wal.SyncEveryRecord,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 24 {
		t.Errorf("crashes = %d, want 24", res.Crashes)
	}
	if res.ShardsUsed < 2 {
		t.Fatalf("workload routed to %d WAL shards; the sharded schedule needs at least 2", res.ShardsUsed)
	}
	if res.MaxLostAcked != 0 {
		t.Errorf("per-record fsync lost %d acknowledged ops across independently crashed shards", res.MaxLostAcked)
	}
	if res.TornTails == 0 {
		t.Error("no shard recovered a torn tail; kill schedule too tame")
	}
	if res.Replayed == 0 {
		t.Error("no records were ever replayed")
	}
}

// TestCrashRecoveryShardedWithCheckpoints adds checkpoints to the
// multi-shard schedule: snapshots anchor all shards at once while
// individual shard logs keep crashing independently.
func TestCrashRecoveryShardedWithCheckpoints(t *testing.T) {
	res, err := RunCrashRecovery(CrashRecoveryConfig{
		Design: crashDesign(), Ops: 80, Devices: 6, KillPoints: 18, Seed: 5,
		Policy: wal.SyncEveryRecord, CheckpointEvery: 12, PersistIdempotency: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsUsed < 2 {
		t.Fatalf("workload routed to %d WAL shards, want >= 2", res.ShardsUsed)
	}
	if res.MaxLostAcked != 0 {
		t.Errorf("per-record fsync lost %d acknowledged ops", res.MaxLostAcked)
	}
	if res.Checkpoints == 0 {
		t.Error("no checkpoint completed")
	}
}

// TestCrashRecoveryRejectsShardedGrouped pins the config guard: a
// multi-device run under grouped fsync has no valid prefix oracle and
// must be refused up front rather than diverging mid-run.
func TestCrashRecoveryRejectsShardedGrouped(t *testing.T) {
	_, err := RunCrashRecovery(CrashRecoveryConfig{
		Design: crashDesign(), Devices: 4, Policy: wal.SyncGrouped,
	})
	if err == nil {
		t.Fatal("multi-device grouped-fsync run was not rejected")
	}
}

// TestCrashRecoveryWithCheckpoints interleaves checkpoints with the
// kill schedule: snapshots anchor recovery mid-run, crashes mid-
// checkpoint fall back to the previous anchor, and the persisted
// idempotency log keeps keyed redeliveries at-most-once across every
// restart.
func TestCrashRecoveryWithCheckpoints(t *testing.T) {
	res, err := RunCrashRecovery(CrashRecoveryConfig{
		Design: crashDesign(), Ops: 80, KillPoints: 20, Seed: 3,
		Policy: wal.SyncGrouped, CheckpointEvery: 10, PersistIdempotency: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 20 {
		t.Errorf("crashes = %d, want 20", res.Crashes)
	}
	if res.Checkpoints == 0 {
		t.Error("no checkpoint completed")
	}
}

// TestRetryRedeliversAcrossRestart is the restart-aware redelivery
// path end to end: an agent's retry wrapper holds a Switchable, the
// first delivery dies with the crashing cloud, the harness swaps in the
// recovered instance, and the retry layer's redelivery lands on it —
// exactly once, because the idempotency log was persisted.
func TestRetryRedeliversAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	design := crashDesign()
	registry := cloud.NewRegistry()
	const deviceID = "AA:BB:CC:0F:00:02"
	if err := registry.Add(cloud.DeviceRecord{ID: deviceID, FactorySecret: "fs", Model: design.Name}); err != nil {
		t.Fatal(err)
	}
	svcOpts := []cloud.Option{cloud.WithPersistentIdempotency()}

	var mu sync.Mutex
	crashNext := false
	fp := func(stage wal.Stage) wal.Crash {
		mu.Lock()
		defer mu.Unlock()
		if crashNext && stage == wal.StageFramePayload {
			crashNext = false
			return wal.CrashKeep
		}
		return wal.CrashNone
	}
	open := func() *cloud.Durable {
		d, err := cloud.OpenDurable(dir, design, registry, cloud.DurableOptions{
			WAL:            wal.Options{Policy: wal.SyncEveryRecord, Failpoint: fp},
			ServiceOptions: svcOpts,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d := open()
	defer func() { d.Close() }()

	sw := transport.NewSwitchable(d)
	rt := retry.Wrap(sw, retry.Policy{MaxAttempts: 4, Sleep: func(time.Duration) {}})
	defer rt.Close()

	if err := rt.RegisterUser(protocol.RegisterUserRequest{UserID: "u@x", Password: "pw"}); err != nil {
		t.Fatal(err)
	}
	login, err := rt.Login(protocol.LoginRequest{UserID: "u@x", Password: "pw"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.HandleStatus(protocol.StatusRequest{Kind: protocol.StatusRegister, DeviceID: deviceID}); err != nil {
		t.Fatal(err)
	}

	// Arrange the crash on the next append, and recover in the retry
	// wrapper's error path: the Retryable hook doubles as the harness's
	// "the operator restarted the cloud" moment, swapping the recovered
	// instance in before the redelivery fires.
	mu.Lock()
	crashNext = true
	mu.Unlock()
	rt2 := retry.Wrap(sw, retry.Policy{
		MaxAttempts: 4,
		Sleep:       func(time.Duration) {},
		Retryable: func(err error) bool {
			if errors.Is(err, wal.ErrCrashed) {
				d.Close()
				d = open()
				sw.Swap(d)
				return true
			}
			return retry.DefaultRetryable(err)
		},
	})
	defer rt2.Close()

	if _, err := rt2.HandleBind(protocol.BindRequest{DeviceID: deviceID, UserToken: login.UserToken}); err != nil {
		t.Fatalf("bind did not survive the restart: %v", err)
	}
	state, err := sw.ShadowState(protocol.ShadowStateRequest{DeviceID: deviceID})
	if err != nil {
		t.Fatal(err)
	}
	if state.BoundUser != "u@x" {
		t.Errorf("recovered bound user = %q, want u@x", state.BoundUser)
	}
	if got := d.Service().Stats().BindsAccepted; got != 1 {
		t.Errorf("accepted binds = %d, want exactly 1 across the redelivery", got)
	}
}
