package testbed

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
	"github.com/iotbind/iotbind/internal/wal"
)

// CrashRecoveryConfig parameterizes a crash-fault run: a deterministic
// workload of logged operations driven against a durable cloud whose
// WAL is armed with seeded kill-points, each crash followed by a
// restart that must recover exactly the durable prefix.
type CrashRecoveryConfig struct {
	// Design is the vendor design under test.
	Design core.DesignSpec
	// Ops is the workload length after setup (default 60). Every
	// operation is a logged mutation, so operation index maps 1:1 onto
	// WAL LSNs and the per-shard watermark vector is the resume oracle.
	Ops int
	// Devices spreads the workload across N devices (default 1). With
	// more than one device the records land on multiple WAL shards and
	// the shared kill schedule crashes whichever shard log hits its
	// countdown — individual shard logs die independently while their
	// siblings stay healthy. Multi-device runs require
	// Policy == wal.SyncEveryRecord: the resume oracle needs the
	// durable records to be a prefix of the executed workload, and only
	// per-record fsync guarantees that when one shard's tail can be
	// lost independently of the others.
	Devices int
	// KillPoints is how many seeded crashes to inject (default 20).
	KillPoints int
	// Seed drives the kill schedule: the gap to the next crash, the
	// frame/sync stage it lands on, and whether the torn tail keeps or
	// drops the unsynced suffix.
	Seed int64
	// Policy is the WAL fsync policy (default grouped).
	Policy wal.SyncPolicy
	// GroupEvery overrides the grouped-policy fsync interval (default 2,
	// so sync-stage kill-points occur at workload frequency).
	GroupEvery int
	// SegmentSize overrides the WAL segment size (default 4 KiB, small
	// enough that rotations happen mid-run).
	SegmentSize int
	// PersistIdempotency opts the cloud into the persisted per-shadow
	// idempotency log, making keyed redeliveries at-most-once across
	// restarts.
	PersistIdempotency bool
	// CheckpointEvery checkpoints the victim every N workload operations
	// (0 disables). Checkpoints race the kill schedule like any other
	// durable work: a crash mid-checkpoint must fall back cleanly.
	CheckpointEvery int
}

// CrashRecoveryResult reports a crash-fault run.
type CrashRecoveryResult struct {
	// Ops is the workload length executed.
	Ops int
	// Crashes is how many kill-points actually fired.
	Crashes int
	// TornTails counts shard logs recovered with a torn (truncated)
	// frame at their tail, summed across all recoveries.
	TornTails int
	// DroppedTails counts recoveries whose durable log was shorter than
	// the acknowledged prefix — unsynced records lost by a drop-style
	// crash, re-executed by the harness.
	DroppedTails int
	// MaxLostAcked is the largest number of acknowledged operations any
	// single crash lost. Zero under SyncEveryRecord.
	MaxLostAcked uint64
	// Checkpoints counts checkpoints that completed.
	Checkpoints int
	// Replayed is the total number of WAL records re-executed across all
	// recoveries.
	Replayed int
	// StagesHit counts crashes per WAL stage.
	StagesHit map[wal.Stage]int
	// ShardsUsed is how many distinct WAL shards the workload devices
	// routed to — the blast surface the kill schedule sampled from.
	ShardsUsed int
}

// killer is the seeded failpoint: armed with a countdown, it crashes
// the WAL at the n-th staged event after arming. All shard logs share
// it, so the crash lands on whichever shard's log is active when the
// countdown expires — siblings keep their healthy tails.
type killer struct {
	mu        sync.Mutex
	armed     bool
	countdown int
	crash     wal.Crash
	lastStage wal.Stage
}

func (k *killer) fail(stage wal.Stage) wal.Crash {
	k.mu.Lock()
	defer k.mu.Unlock()
	if !k.armed {
		return wal.CrashNone
	}
	k.countdown--
	if k.countdown > 0 {
		return wal.CrashNone
	}
	k.armed = false
	k.lastStage = stage
	return k.crash
}

func (k *killer) arm(countdown int, crash wal.Crash) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.armed = true
	k.countdown = countdown
	k.crash = crash
}

func (k *killer) disarm() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.armed = false
}

// crashOp is one deterministic workload operation, addressed by index.
type crashOp func(c transport.Cloud) error

// crashWorkload builds the operation list: a rotation of control,
// data-push, share and keyed draining heartbeats, every one of them a
// logged mutation, round-robined across the devices.
func crashWorkload(ops int, devices []string, userToken string, now func() time.Time) []crashOp {
	list := make([]crashOp, ops)
	for i := range list {
		i := i
		deviceID := devices[i%len(devices)]
		switch i % 5 {
		case 0:
			list[i] = func(c transport.Cloud) error {
				_, err := c.HandleControl(protocol.ControlRequest{
					DeviceID: deviceID, UserToken: userToken,
					Command: protocol.Command{ID: fmt.Sprintf("cmd-%d", i), Name: "toggle"},
				})
				return err
			}
		case 1:
			list[i] = func(c transport.Cloud) error {
				return c.PushUserData(protocol.PushUserDataRequest{
					DeviceID: deviceID, UserToken: userToken,
					Data: protocol.UserData{Kind: "schedule", Body: fmt.Sprintf("slot-%d", i)},
				})
			}
		case 3:
			list[i] = func(c transport.Cloud) error {
				return c.HandleShare(protocol.ShareRequest{
					DeviceID: deviceID, UserToken: userToken,
					Guest: "guest@crash.example", Revoke: (i/5)%2 == 1,
				})
			}
		default: // 2, 4: keyed heartbeats that drain and carry a reading
			list[i] = func(c transport.Cloud) error {
				_, err := c.HandleStatus(protocol.StatusRequest{
					Kind: protocol.StatusHeartbeat, DeviceID: deviceID,
					IdempotencyKey: fmt.Sprintf("op-%d", i),
					Readings:       []protocol.Reading{{Name: "power_w", Value: float64(i), At: now()}},
				})
				return err
			}
		}
	}
	return list
}

// crashSetup runs the uncounted prelude — accounts, login, then a
// registration and bind per device — and returns the victim user's
// token. 3 + 2×len(devices) WAL records, matching crashSetupRecords.
func crashSetup(c transport.Cloud, devices []string) (string, error) {
	if err := c.RegisterUser(protocol.RegisterUserRequest{UserID: "victim@crash.example", Password: "pw"}); err != nil {
		return "", err
	}
	if err := c.RegisterUser(protocol.RegisterUserRequest{UserID: "guest@crash.example", Password: "pw"}); err != nil {
		return "", err
	}
	login, err := c.Login(protocol.LoginRequest{UserID: "victim@crash.example", Password: "pw"})
	if err != nil {
		return "", err
	}
	for i, deviceID := range devices {
		if _, err := c.HandleStatus(protocol.StatusRequest{Kind: protocol.StatusRegister, DeviceID: deviceID}); err != nil {
			return "", err
		}
		if _, err := c.HandleBind(protocol.BindRequest{
			DeviceID: deviceID, UserToken: login.UserToken, IdempotencyKey: fmt.Sprintf("setup-bind-%d", i),
		}); err != nil {
			return "", err
		}
	}
	return login.UserToken, nil
}

func crashSetupRecords(devices int) int { return 3 + 2*devices }

// RunCrashRecovery drives the configured workload against a durable
// cloud under seeded kill-points, restarting after every crash, and
// proves the final recovered state is byte-identical to a never-crashed
// reference executing the same workload with the same entropy.
//
// The resume oracle is the WAL shard watermark vector. The workload is
// sequential and every operation appends exactly one record, so
// operation i's record always carries LSN setup+i+1 — re-executions
// included, because a lost allocation never survives a restart — and
// lands on the shard its device routes to. After a restart, operation i
// is durable iff that LSN is at or below its shard's recovered
// watermark (or the restored snapshot's anchor). The harness resumes at
// the first non-durable operation: everything durable replayed (never
// re-executed — that would double-apply), everything lost with a torn
// or dropped shard tail re-executes, drawing the same per-LSN entropy
// the lost execution drew. The harness additionally asserts the durable
// set is a prefix of the executed workload — the invariant per-record
// fsync must uphold even when individual shard logs crash
// independently. Agents keep a single transport.Switchable across
// restarts, the way a reconnecting client keeps its retry wrapper.
func RunCrashRecovery(cfg CrashRecoveryConfig) (CrashRecoveryResult, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 60
	}
	if cfg.Devices <= 0 {
		cfg.Devices = 1
	}
	if cfg.KillPoints <= 0 {
		cfg.KillPoints = 20
	}
	if cfg.GroupEvery <= 0 {
		cfg.GroupEvery = 2
	}
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = 4 << 10
	}
	res := CrashRecoveryResult{Ops: cfg.Ops, StagesHit: make(map[wal.Stage]int)}
	fail := func(err error) (CrashRecoveryResult, error) {
		return res, fmt.Errorf("testbed: crash recovery: %w", err)
	}
	if cfg.Devices > 1 && cfg.Policy != wal.SyncEveryRecord {
		return fail(fmt.Errorf("multi-device runs require wal.SyncEveryRecord: grouped fsync can lose one shard's acknowledged tail independently, leaving a durable set that is not a workload prefix"))
	}

	root, err := os.MkdirTemp("", "crashrec-*")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(root)

	devices := make([]string, cfg.Devices)
	registry := cloud.NewRegistry()
	for i := range devices {
		devices[i] = fmt.Sprintf("AA:BB:CC:0F:01:%02X", i)
		if err := registry.Add(cloud.DeviceRecord{ID: devices[i], FactorySecret: "factory-secret-crash", Model: cfg.Design.Name}); err != nil {
			return fail(err)
		}
	}
	frozen := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return frozen }
	var svcOpts []cloud.Option
	if cfg.PersistIdempotency {
		svcOpts = append(svcOpts, cloud.WithPersistentIdempotency())
	}

	// The victim first: opening it mints the master seed the reference
	// must share for replayed entropy (tokens, nonces) to line up.
	kill := &killer{}
	victimDir := filepath.Join(root, "victim")
	openVictim := func() (*cloud.Durable, error) {
		return cloud.OpenDurable(victimDir, cfg.Design, registry, cloud.DurableOptions{
			Clock: clock,
			WAL: wal.Options{
				Policy: cfg.Policy, GroupEvery: cfg.GroupEvery,
				SegmentSize: cfg.SegmentSize, Failpoint: kill.fail,
			},
			ServiceOptions: svcOpts,
		})
	}
	victim, err := openVictim()
	if err != nil {
		return fail(err)
	}
	defer func() { victim.Close() }()

	// Each operation's WAL shard is pinned by the device routing and the
	// meta-persisted shard count, so the oracle computes it once.
	setupRecs := crashSetupRecords(cfg.Devices)
	opShard := make([]int, cfg.Ops)
	shardSet := make(map[int]bool)
	for i := range opShard {
		opShard[i] = victim.WALShardOf(devices[i%len(devices)])
		shardSet[opShard[i]] = true
	}
	res.ShardsUsed = len(shardSet)

	refDir := filepath.Join(root, "ref")
	if err := os.MkdirAll(refDir, 0o755); err != nil {
		return fail(err)
	}
	meta, err := os.ReadFile(filepath.Join(victimDir, "meta.json"))
	if err != nil {
		return fail(err)
	}
	if err := os.WriteFile(filepath.Join(refDir, "meta.json"), meta, 0o644); err != nil {
		return fail(err)
	}
	ref, err := cloud.OpenDurable(refDir, cfg.Design, registry, cloud.DurableOptions{
		Clock:          clock,
		WAL:            wal.Options{Policy: wal.SyncOff},
		ServiceOptions: svcOpts,
	})
	if err != nil {
		return fail(err)
	}
	defer ref.Close()

	// Reference run: the whole workload, no faults.
	refToken, err := crashSetup(ref, devices)
	if err != nil {
		return fail(err)
	}
	for _, op := range crashWorkload(cfg.Ops, devices, refToken, clock) {
		_ = op(ref) // app-level rejections are part of the workload
	}

	// Victim setup runs before the kill schedule arms.
	sw := transport.NewSwitchable(victim)
	token, err := crashSetup(sw, devices)
	if err != nil {
		return fail(err)
	}
	if token != refToken {
		return fail(fmt.Errorf("replay determinism broken: victim token %q, reference token %q", token, refToken))
	}
	workload := crashWorkload(cfg.Ops, devices, token, clock)

	rng := rand.New(rand.NewSource(cfg.Seed))
	armNext := func() {
		crash := wal.CrashKeep
		if rng.Intn(2) == 1 {
			crash = wal.CrashDrop
		}
		kill.arm(1+rng.Intn(6), crash)
	}
	armNext()

	restart := func() error {
		res.Crashes++
		if err := victim.Close(); err != nil {
			return err
		}
		v, err := openVictim()
		if err != nil {
			return err
		}
		victim = v
		sw.Swap(victim)
		rec := victim.Recovery()
		res.Replayed += rec.Replayed
		res.TornTails += rec.TornTails()
		res.StagesHit[kill.lastStage]++
		if res.Crashes < cfg.KillPoints {
			armNext()
		} else {
			kill.disarm()
		}
		return nil
	}

	// resumePoint inspects the recovered watermark vector and returns
	// the first workload index to (re-)execute, given that operations
	// 0..executed-1 were acknowledged before the crash. The crashed
	// operation itself (index `executed`, never acknowledged) may still
	// be durable — a keep-style crash after the frame reached the file —
	// in which case it too is skipped: its record already replayed.
	resumePoint := func(executed int) (int, error) {
		marks := victim.ShardWatermarks()
		floor := victim.Recovery().SnapshotLSN
		durable := func(j int) bool {
			lsn := uint64(setupRecs + j + 1)
			return lsn <= floor || lsn <= marks[opShard[j]]
		}
		resume := 0
		for resume <= executed && resume < cfg.Ops && durable(resume) {
			resume++
		}
		for j := resume + 1; j <= executed && j < cfg.Ops; j++ {
			if durable(j) {
				return 0, fmt.Errorf("durable records are not a workload prefix: op %d survived on shard %d but op %d was lost from shard %d",
					j, opShard[j], resume, opShard[resume])
			}
		}
		if resume < executed {
			res.DroppedTails++
			if lost := uint64(executed - resume); lost > res.MaxLostAcked {
				res.MaxLostAcked = lost
			}
		}
		return resume, nil
	}

	i := 0
	for i < cfg.Ops {
		err := workload[i](sw)
		if errors.Is(err, wal.ErrCrashed) {
			if err := restart(); err != nil {
				return fail(err)
			}
			resume, err := resumePoint(i)
			if err != nil {
				return fail(err)
			}
			i = resume
			continue
		}
		i++
		if cfg.CheckpointEvery > 0 && i%cfg.CheckpointEvery == 0 {
			switch err := victim.Checkpoint(); {
			case err == nil:
				res.Checkpoints++
			case errors.Is(err, wal.ErrCrashed):
				if err := restart(); err != nil {
					return fail(err)
				}
				resume, err := resumePoint(i)
				if err != nil {
					return fail(err)
				}
				i = resume
			default:
				return fail(err)
			}
		}
	}
	kill.disarm()

	// One final restart through the full recovery path, then the
	// verdict: the recovered state must encode byte-identically to the
	// never-crashed reference.
	if err := victim.Close(); err != nil {
		return fail(err)
	}
	v, err := openVictim()
	if err != nil {
		return fail(err)
	}
	victim = v
	res.Replayed += victim.Recovery().Replayed

	var want, got bytes.Buffer
	if err := cloud.EncodeSnapshot(&want, ref.Snapshot()); err != nil {
		return fail(err)
	}
	if err := cloud.EncodeSnapshot(&got, victim.Snapshot()); err != nil {
		return fail(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		return fail(fmt.Errorf("recovered state diverged from reference after %d crashes:\nreference:\n%s\nrecovered:\n%s",
			res.Crashes, want.Bytes(), got.Bytes()))
	}
	return res, nil
}
