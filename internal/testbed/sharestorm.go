package testbed

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
	"github.com/iotbind/iotbind/internal/wal"
)

// ShareStormConfig parameterizes a share/revoke storm: a deterministic
// churn of delegation grants, cascade revocations, share flips and
// re-delegation attempts interleaved with owner and delegated control
// traffic, driven against a durable cloud whose WAL is armed with
// seeded kill-points.
type ShareStormConfig struct {
	// Design is the vendor design under test. The delegation policy
	// flags shape which storm operations are accepted; acceptance and
	// rejection are both part of the deterministic workload.
	Design core.DesignSpec
	// Ops is the storm length after setup (default 120). Every
	// operation is a logged mutation — one WAL record each, rejections
	// included — so operation index maps 1:1 onto LSNs and the shard
	// watermark vector is the resume oracle, exactly as in
	// RunCrashRecovery.
	Ops int
	// Guests is how many guest accounts churn through the lattice
	// (default 3; minimum 2 so re-delegation chains form).
	Guests int
	// KillPoints is how many seeded mid-run kills to inject (default 16).
	KillPoints int
	// Seed drives the kill schedule.
	Seed int64
	// Policy is the WAL fsync policy (default wal.SyncEveryRecord — the
	// storm's acceptance bar is MaxLostAcked == 0, which only per-record
	// fsync guarantees).
	Policy wal.SyncPolicy
	// SegmentSize overrides the WAL segment size (default 4 KiB).
	SegmentSize int
	// CheckpointEvery checkpoints the victim every N storm operations
	// (0 disables); a kill mid-checkpoint must fall back cleanly.
	CheckpointEvery int
	// PersistIdempotency opts into the persisted idempotency log, so the
	// storm's keyed grants and revocations stay at-most-once across
	// restarts.
	PersistIdempotency bool
}

// ShareStormResult reports a share-storm run.
type ShareStormResult struct {
	// Ops is the storm length executed.
	Ops int
	// Crashes is how many kill-points actually fired.
	Crashes int
	// TornTails counts shard logs recovered with a torn tail frame.
	TornTails int
	// DroppedTails counts recoveries that lost acknowledged operations.
	DroppedTails int
	// MaxLostAcked is the largest number of acknowledged operations any
	// single kill lost. The storm's acceptance bar is zero.
	MaxLostAcked uint64
	// Checkpoints counts checkpoints that completed.
	Checkpoints int
	// Replayed is the total number of WAL records re-executed across
	// all recoveries.
	Replayed int
	// Granted, Revoked and Rejected are the cloud's delegation counters
	// after the final recovery — the storm's accepted/refused split.
	Granted, Revoked, Rejected int64
	// FinalGrants is how many live grants the lattice holds at the end.
	FinalGrants int
}

// stormScopes is the full grant the storm's owner hands out; guests
// re-delegate narrower (or, under permissive designs, try to widen).
var stormScopes = []string{"control", "read", "share"}

// stormWorkload builds the storm's operation list: grants, revocations,
// share flips, re-delegation attempts and control traffic, every one a
// logged mutation. tokens[0] is the owner, tokens[1:] the guests;
// guests[i] names the account behind tokens[i+1].
func stormWorkload(ops int, deviceID string, guests []string, tokens []string) []crashOp {
	owner := tokens[0]
	list := make([]crashOp, ops)
	for i := range list {
		i := i
		g := i % len(guests)
		switch i % 8 {
		case 0: // owner grants (replacing any standing grant)
			list[i] = func(c transport.Cloud) error {
				_, err := c.HandleDelegate(protocol.DelegateRequest{
					DeviceID: deviceID, UserToken: owner, Grantee: guests[g],
					Scopes: stormScopes, Depth: 1,
					IdempotencyKey: fmt.Sprintf("storm-deleg-%d", i),
				})
				return err
			}
		case 1, 5: // owner control rides through the churn
			list[i] = func(c transport.Cloud) error {
				_, err := c.HandleControl(protocol.ControlRequest{
					DeviceID: deviceID, UserToken: owner,
					Command: protocol.Command{ID: fmt.Sprintf("storm-cmd-%d", i), Name: "toggle"},
				})
				return err
			}
		case 2: // guest re-delegates to the next guest (depth permitting)
			list[i] = func(c transport.Cloud) error {
				_, err := c.HandleDelegate(protocol.DelegateRequest{
					DeviceID: deviceID, UserToken: tokens[1+g],
					Grantee:        guests[(g+1)%len(guests)],
					Scopes:         []string{"control", "read"},
					IdempotencyKey: fmt.Sprintf("storm-redeleg-%d", i),
				})
				return err
			}
		case 3: // delegated control with the guest's own user token
			list[i] = func(c transport.Cloud) error {
				_, err := c.HandleControl(protocol.ControlRequest{
					DeviceID: deviceID, UserToken: tokens[1+g],
					Command: protocol.Command{ID: fmt.Sprintf("storm-gcmd-%d", i), Name: "toggle"},
				})
				return err
			}
		case 4: // owner revokes (cascading under strict designs)
			list[i] = func(c transport.Cloud) error {
				return c.HandleRevokeDelegation(protocol.RevokeDelegationRequest{
					DeviceID: deviceID, UserToken: owner, Grantee: guests[(g+1)%len(guests)],
					IdempotencyKey: fmt.Sprintf("storm-revoke-%d", i),
				})
			}
		case 6: // legacy share flip rides the same lattice
			list[i] = func(c transport.Cloud) error {
				return c.HandleShare(protocol.ShareRequest{
					DeviceID: deviceID, UserToken: owner,
					Guest: guests[g], Revoke: (i/8)%2 == 1,
				})
			}
		default: // 7: keyed heartbeat drains the queued commands
			list[i] = func(c transport.Cloud) error {
				_, err := c.HandleStatus(protocol.StatusRequest{
					Kind: protocol.StatusHeartbeat, DeviceID: deviceID,
					IdempotencyKey: fmt.Sprintf("storm-hb-%d", i),
				})
				return err
			}
		}
	}
	return list
}

// stormSetup runs the uncounted prelude — owner and guest accounts, a
// login each, one device registration and the owner's bind — returning
// the login tokens (owner first). 2×(1+guests) + 2 WAL records.
func stormSetup(c transport.Cloud, deviceID string, guests []string) ([]string, error) {
	users := append([]string{"owner@storm.example"}, guests...)
	for _, u := range users {
		if err := c.RegisterUser(protocol.RegisterUserRequest{UserID: u, Password: "pw"}); err != nil {
			return nil, err
		}
	}
	tokens := make([]string, len(users))
	for i, u := range users {
		login, err := c.Login(protocol.LoginRequest{UserID: u, Password: "pw"})
		if err != nil {
			return nil, err
		}
		tokens[i] = login.UserToken
	}
	if _, err := c.HandleStatus(protocol.StatusRequest{Kind: protocol.StatusRegister, DeviceID: deviceID}); err != nil {
		return nil, err
	}
	if _, err := c.HandleBind(protocol.BindRequest{
		DeviceID: deviceID, UserToken: tokens[0], IdempotencyKey: "storm-setup-bind",
	}); err != nil {
		return nil, err
	}
	return tokens, nil
}

func stormSetupRecords(guests int) int { return 2*(1+guests) + 2 }

// RunShareStorm drives a share/revoke storm interleaved with control
// traffic against a durable cloud, kills it mid-run at seeded points,
// and proves the final recovered state is byte-identical to a reference
// that executed the same storm with the same entropy and no kills — the
// storm-free ordering. Under wal.SyncEveryRecord the run must also lose
// no acknowledged operation (MaxLostAcked == 0): a revocation the owner
// saw acknowledged is never resurrected by a crash, and a grant is
// never silently lost.
func RunShareStorm(cfg ShareStormConfig) (ShareStormResult, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 120
	}
	if cfg.Guests <= 0 {
		cfg.Guests = 3
	}
	if cfg.Guests < 2 {
		cfg.Guests = 2
	}
	if cfg.KillPoints <= 0 {
		cfg.KillPoints = 16
	}
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = 4 << 10
	}
	res := ShareStormResult{Ops: cfg.Ops}
	fail := func(err error) (ShareStormResult, error) {
		return res, fmt.Errorf("testbed: share storm: %w", err)
	}

	root, err := os.MkdirTemp("", "sharestorm-*")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(root)

	const deviceID = "AA:BB:CC:0F:02:01"
	registry := cloud.NewRegistry()
	if err := registry.Add(cloud.DeviceRecord{ID: deviceID, FactorySecret: "factory-secret-storm", Model: cfg.Design.Name}); err != nil {
		return fail(err)
	}
	guests := make([]string, cfg.Guests)
	for i := range guests {
		guests[i] = fmt.Sprintf("guest-%d@storm.example", i)
	}
	frozen := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return frozen }
	var svcOpts []cloud.Option
	if cfg.PersistIdempotency {
		svcOpts = append(svcOpts, cloud.WithPersistentIdempotency())
	}

	kill := &killer{}
	victimDir := filepath.Join(root, "victim")
	openVictim := func() (*cloud.Durable, error) {
		return cloud.OpenDurable(victimDir, cfg.Design, registry, cloud.DurableOptions{
			Clock: clock,
			WAL: wal.Options{
				Policy: cfg.Policy, SegmentSize: cfg.SegmentSize, Failpoint: kill.fail,
			},
			ServiceOptions: svcOpts,
		})
	}
	victim, err := openVictim()
	if err != nil {
		return fail(err)
	}
	defer func() { victim.Close() }()

	// One device: every storm record lands on its shard, so the oracle
	// is a single watermark.
	setupRecs := stormSetupRecords(cfg.Guests)
	shard := victim.WALShardOf(deviceID)

	refDir := filepath.Join(root, "ref")
	if err := os.MkdirAll(refDir, 0o755); err != nil {
		return fail(err)
	}
	meta, err := os.ReadFile(filepath.Join(victimDir, "meta.json"))
	if err != nil {
		return fail(err)
	}
	if err := os.WriteFile(filepath.Join(refDir, "meta.json"), meta, 0o644); err != nil {
		return fail(err)
	}
	ref, err := cloud.OpenDurable(refDir, cfg.Design, registry, cloud.DurableOptions{
		Clock:          clock,
		WAL:            wal.Options{Policy: wal.SyncOff},
		ServiceOptions: svcOpts,
	})
	if err != nil {
		return fail(err)
	}
	defer ref.Close()

	// Reference run: the whole storm, no kills. Policy rejections
	// (escalation refused, revoked guests controlling) are part of the
	// workload on both sides.
	refTokens, err := stormSetup(ref, deviceID, guests)
	if err != nil {
		return fail(err)
	}
	for _, op := range stormWorkload(cfg.Ops, deviceID, guests, refTokens) {
		_ = op(ref)
	}

	sw := transport.NewSwitchable(victim)
	tokens, err := stormSetup(sw, deviceID, guests)
	if err != nil {
		return fail(err)
	}
	for i := range tokens {
		if tokens[i] != refTokens[i] {
			return fail(fmt.Errorf("replay determinism broken: victim token %d diverges from reference", i))
		}
	}
	workload := stormWorkload(cfg.Ops, deviceID, guests, tokens)

	rng := rand.New(rand.NewSource(cfg.Seed))
	armNext := func() {
		crash := wal.CrashKeep
		if rng.Intn(2) == 1 {
			crash = wal.CrashDrop
		}
		kill.arm(1+rng.Intn(6), crash)
	}
	armNext()

	restart := func() error {
		res.Crashes++
		if err := victim.Close(); err != nil {
			return err
		}
		v, err := openVictim()
		if err != nil {
			return err
		}
		victim = v
		sw.Swap(victim)
		rec := victim.Recovery()
		res.Replayed += rec.Replayed
		res.TornTails += rec.TornTails()
		if res.Crashes < cfg.KillPoints {
			armNext()
		} else {
			kill.disarm()
		}
		return nil
	}

	// resumePoint mirrors RunCrashRecovery's oracle for the single-shard
	// case: operation j is durable iff its LSN is at or below the shard's
	// recovered watermark or the restored snapshot's anchor.
	resumePoint := func(executed int) int {
		marks := victim.ShardWatermarks()
		floor := victim.Recovery().SnapshotLSN
		durable := func(j int) bool {
			lsn := uint64(setupRecs + j + 1)
			return lsn <= floor || lsn <= marks[shard]
		}
		resume := 0
		for resume <= executed && resume < cfg.Ops && durable(resume) {
			resume++
		}
		if resume < executed {
			res.DroppedTails++
			if lost := uint64(executed - resume); lost > res.MaxLostAcked {
				res.MaxLostAcked = lost
			}
		}
		return resume
	}

	i := 0
	for i < cfg.Ops {
		err := workload[i](sw)
		if errors.Is(err, wal.ErrCrashed) {
			if err := restart(); err != nil {
				return fail(err)
			}
			i = resumePoint(i)
			continue
		}
		i++
		if cfg.CheckpointEvery > 0 && i%cfg.CheckpointEvery == 0 {
			switch err := victim.Checkpoint(); {
			case err == nil:
				res.Checkpoints++
			case errors.Is(err, wal.ErrCrashed):
				if err := restart(); err != nil {
					return fail(err)
				}
				i = resumePoint(i)
			default:
				return fail(err)
			}
		}
	}
	kill.disarm()

	// Final restart through the full recovery path, then the verdict:
	// the recovered state — lattice, tokens, queues, idempotency log,
	// stats — must encode byte-identically to the storm-free reference.
	if err := victim.Close(); err != nil {
		return fail(err)
	}
	v, err := openVictim()
	if err != nil {
		return fail(err)
	}
	victim = v
	res.Replayed += victim.Recovery().Replayed

	var want, got bytes.Buffer
	if err := cloud.EncodeSnapshot(&want, ref.Snapshot()); err != nil {
		return fail(err)
	}
	if err := cloud.EncodeSnapshot(&got, victim.Snapshot()); err != nil {
		return fail(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		return fail(fmt.Errorf("recovered state diverged from the storm-free reference after %d kills:\nreference:\n%s\nrecovered:\n%s",
			res.Crashes, want.Bytes(), got.Bytes()))
	}

	stats := victim.Service().Stats()
	res.Granted = stats.DelegationsGranted
	res.Revoked = stats.DelegationsRevoked
	res.Rejected = stats.DelegationsRejected
	list, err := victim.ListDelegations(protocol.ListDelegationsRequest{DeviceID: deviceID, UserToken: tokens[0]})
	if err != nil {
		return fail(err)
	}
	res.FinalGrants = len(list.Grants)
	return res, nil
}
