package testbed

import (
	"errors"
	"testing"

	"github.com/iotbind/iotbind/internal/app"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/device"
	"github.com/iotbind/iotbind/internal/localnet"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
	"github.com/iotbind/iotbind/internal/vendors"
)

// The adversary model grounds device-ID leakage in ownership transfer:
// "device reuse, reselling, stealing" (Section III-A). These tests run
// the resale lifecycle — first owner uses the device, factory-resets it,
// sells it; the second owner sets it up in a different home — and pin
// what each design family does about the previous binding.

// resale moves the testbed's device into a buyer's home and returns the
// buyer's app.
func resale(t *testing.T, tb *Testbed, design core.DesignSpec) (*app.App, *device.Device) {
	t.Helper()
	// The seller factory-resets before shipping.
	tb.VictimDevice().Reset()

	// The buyer's home is a different network with a different address.
	buyerHome := localnet.NewNetwork("buyer-home", "192.0.2.20")
	buyerTransport := transport.StampSource(tb.Cloud(), buyerHome.PublicIP())

	// The physical device moves: same identity, new radio environment.
	dev, err := device.New(device.Config{
		ID:            tb.DeviceID(),
		FactorySecret: "factory-secret-" + tb.DeviceID(),
		LocalName:     "bought-device",
		Model:         design.Name,
	}, design, buyerTransport)
	if err != nil {
		t.Fatal(err)
	}
	if err := buyerHome.Join(dev); err != nil {
		t.Fatal(err)
	}

	buyer, err := app.New("buyer@example.com", "pw-buyer", design, buyerTransport, buyerHome)
	if err != nil {
		t.Fatal(err)
	}
	if err := buyer.RegisterAccount(); err != nil {
		t.Fatal(err)
	}
	if err := buyer.Login(); err != nil {
		t.Fatal(err)
	}
	return buyer, dev
}

type buyerActions struct{ dev *device.Device }

func (a buyerActions) PressButton(string) error { return a.dev.PressButton() }
func (a buyerActions) ResetDevice(string) error { a.dev.Reset(); return nil }

// TestResaleCleanHandover: when the seller removes the device from their
// account before selling, every design lets the buyer bind.
func TestResaleCleanHandover(t *testing.T) {
	for _, name := range []string{"Belkin", "TP-LINK", "D-LINK"} {
		name := name
		t.Run(name, func(t *testing.T) {
			p, _ := vendors.ByVendor(name)
			tb, err := New(p.Design)
			if err != nil {
				t.Fatal(err)
			}
			if err := tb.SetupVictim(); err != nil {
				t.Fatal(err)
			}
			// Seller removes the device properly.
			if err := tb.VictimApp().Unbind(tb.DeviceID()); err != nil {
				t.Fatal(err)
			}

			buyer, dev := resale(t, tb, p.Design)
			if err := buyer.SetupDevice("bought-device", buyerActions{dev: dev}); err != nil {
				t.Fatalf("buyer setup after clean handover: %v", err)
			}
			st, err := tb.Shadow()
			if err != nil {
				t.Fatal(err)
			}
			if st.BoundUser != "buyer@example.com" {
				t.Errorf("bound to %q, want the buyer", st.BoundUser)
			}
		})
	}
}

// TestResaleStaleBinding: when the seller forgets to unbind, the outcome
// depends on the design — the "used device" problem the loose coupling of
// physical possession and cloud state creates.
func TestResaleStaleBinding(t *testing.T) {
	t.Run("reset-notify design self-heals (TP-LINK)", func(t *testing.T) {
		p, _ := vendors.ByVendor("TP-LINK")
		tb, err := New(p.Design)
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.SetupVictim(); err != nil {
			t.Fatal(err)
		}
		// Seller ships without unbinding; the setup-time reset emits the
		// device-sent unbind that clears the stale binding.
		buyer, dev := resale(t, tb, p.Design)
		if err := buyer.SetupDevice("bought-device", buyerActions{dev: dev}); err != nil {
			t.Fatalf("buyer setup: %v", err)
		}
		st, err := tb.Shadow()
		if err != nil {
			t.Fatal(err)
		}
		if st.BoundUser != "buyer@example.com" {
			t.Errorf("bound to %q, want the buyer", st.BoundUser)
		}
	})

	t.Run("checking design locks the buyer out (D-LINK)", func(t *testing.T) {
		p, _ := vendors.ByVendor("D-LINK")
		tb, err := New(p.Design)
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.SetupVictim(); err != nil {
			t.Fatal(err)
		}
		buyer, dev := resale(t, tb, p.Design)
		err = buyer.SetupDevice("bought-device", buyerActions{dev: dev})
		if !errors.Is(err, protocol.ErrAlreadyBound) {
			t.Fatalf("buyer setup = %v, want ErrAlreadyBound (stale binding)", err)
		}
		// The seller still "owns" hardware they no longer possess —
		// and could control it remotely once the buyer powers it on.
		st, err := tb.Shadow()
		if err != nil {
			t.Fatal(err)
		}
		if st.BoundUser != DefaultVictimUser {
			t.Errorf("bound to %q, want the (absent) seller", st.BoundUser)
		}
	})

	t.Run("replace design hands over silently (KONKE)", func(t *testing.T) {
		p, _ := vendors.ByVendor("KONKE")
		tb, err := New(p.Design)
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.SetupVictim(); err != nil {
			t.Fatal(err)
		}
		buyer, dev := resale(t, tb, p.Design)
		if err := buyer.SetupDevice("bought-device", buyerActions{dev: dev}); err != nil {
			t.Fatalf("buyer setup: %v", err)
		}
		st, err := tb.Shadow()
		if err != nil {
			t.Fatal(err)
		}
		if st.BoundUser != "buyer@example.com" {
			t.Errorf("bound to %q, want the buyer via replacement", st.BoundUser)
		}
	})
}

// TestResaleLeakedIDRisk closes the loop with the adversary model: the
// seller (or anyone in the supply chain) who recorded the device ID can
// attack the buyer remotely after the resale — the exact leak channel
// Section III-A describes.
func TestResaleLeakedIDRisk(t *testing.T) {
	p, _ := vendors.ByVendor("E-Link Smart")
	tb, err := New(p.Design)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.SetupVictim(); err != nil {
		t.Fatal(err)
	}
	if err := tb.VictimApp().Unbind(tb.DeviceID()); err != nil {
		t.Fatal(err)
	}

	buyer, dev := resale(t, tb, p.Design)
	if err := buyer.SetupDevice("bought-device", buyerActions{dev: dev}); err != nil {
		t.Fatal(err)
	}

	// The "seller" now plays the attacker role with the recorded ID: on
	// this replace-without-check design one forged bind hijacks the
	// buyer's camera.
	if _, err := tb.Attacker().ForgeBind(tb.DeviceID()); err != nil {
		t.Fatal(err)
	}
	st, err := tb.Shadow()
	if err != nil {
		t.Fatal(err)
	}
	if st.BoundUser != DefaultAttackerUser {
		t.Errorf("bound to %q, want the attacker (A4-1 against the buyer)", st.BoundUser)
	}
}
