//go:build race

package testbed

// raceEnabled scales down load-test sizes under the race detector.
const raceEnabled = true
