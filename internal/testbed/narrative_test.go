package testbed

import (
	"errors"
	"testing"
	"time"

	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/vendors"
)

// The tests in this file pin the experimental narratives of Section VI-B
// paragraph by paragraph — the concrete behaviours the paper describes
// observing on specific devices, beyond the summary cells of Table III.

// TestNarrativeDLinkDataInjectionAndStealing pins the device #10 story:
// the attacker forges device messages over a raw connection, reports fake
// power consumption that the user then sees, and receives the schedule
// the user configured.
func TestNarrativeDLinkDataInjectionAndStealing(t *testing.T) {
	p, _ := vendors.ByVendor("D-LINK")
	tb, err := New(p.Design)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.SetupVictim(); err != nil {
		t.Fatal(err)
	}
	// "we setup a schedule on the app to turn on and turn off the smart
	// plug".
	if err := tb.VictimApp().PushSchedule(tb.DeviceID(), protocol.UserData{
		Kind: "schedule", Body: "turn on 19:00, turn off 23:00",
	}); err != nil {
		t.Fatal(err)
	}

	// "we forged messages that report fake power consumption to the
	// user" — and the same forged exchange returns the schedule.
	if _, err := tb.Attacker().ForgeStatus(tb.DeviceID(), protocol.StatusHeartbeat, []protocol.Reading{
		{Name: "power_w", Value: 9001},
	}); err != nil {
		t.Fatal(err)
	}

	readings, err := tb.VictimApp().Readings(tb.DeviceID())
	if err != nil {
		t.Fatal(err)
	}
	sawFake := false
	for _, r := range readings {
		if r.Value == 9001 {
			sawFake = true
		}
	}
	if !sawFake {
		t.Error("the user does not see the fake power consumption")
	}
	stolen := tb.Attacker().StolenData()
	if len(stolen) != 1 || stolen[0].Body != "turn on 19:00, turn off 23:00" {
		t.Errorf("attacker stole %+v, want the schedule", stolen)
	}
}

// TestNarrativePhilipsHueButtonAndIP pins the device #7 story: binding
// requires a physical button press within 30 seconds, and the cloud
// compares the source IPs of the device's request and the user's request,
// failing the bind when they differ — which is what defeats a racing
// remote attacker even inside the open window.
func TestNarrativePhilipsHueButtonAndIP(t *testing.T) {
	p, _ := vendors.ByVendor("Philips Hue")
	tb, err := New(p.Design)
	if err != nil {
		t.Fatal(err)
	}
	svc := tb.Cloud()
	devID := tb.DeviceID()
	secret := "factory-secret-" + devID

	// A second user account drives the cloud directly so the test can
	// hold the window open mid-flow.
	if err := svc.RegisterUser(protocol.RegisterUserRequest{UserID: "manual@example.com", Password: "pw"}); err != nil {
		t.Fatal(err)
	}
	login, err := svc.Login(protocol.LoginRequest{UserID: "manual@example.com", Password: "pw"})
	if err != nil {
		t.Fatal(err)
	}
	tok, err := svc.RequestDeviceToken(protocol.DeviceTokenRequest{
		UserToken: login.UserToken, DeviceID: devID,
		PairingProof: protocol.PairingProof(secret, devID),
	})
	if err != nil {
		t.Fatal(err)
	}

	// The bulb registers from the home network with the button pressed.
	if _, err := svc.HandleStatus(protocol.StatusRequest{
		Kind: protocol.StatusRegister, DeviceID: devID,
		DevToken: tok.DevToken, ButtonPressed: true, SourceIP: DefaultHomeIP,
	}); err != nil {
		t.Fatal(err)
	}

	// The attacker races inside the 30-second window — from their own
	// network. The source-IP comparison fails the bind.
	if _, err := tb.Attacker().ForgeBind(devID); !errors.Is(err, protocol.ErrOutsideWindow) {
		t.Fatalf("racing remote bind = %v, want ErrOutsideWindow (IP mismatch)", err)
	}

	// The co-located user binds fine inside the window.
	if _, err := svc.HandleBind(protocol.BindRequest{
		DeviceID: devID, UserToken: login.UserToken,
		Sender: core.SenderApp, SourceIP: DefaultHomeIP,
	}); err != nil {
		t.Fatalf("co-located bind in window: %v", err)
	}

	// After 30 seconds the window is gone even for the owner's network.
	if err := svc.HandleUnbind(protocol.UnbindRequest{
		DeviceID: devID, UserToken: login.UserToken, Sender: core.SenderApp,
	}); err != nil {
		t.Fatal(err)
	}
	tb.Clock().Advance(cloud.DefaultButtonWindow + time.Second)
	if _, err := svc.HandleStatus(protocol.StatusRequest{
		Kind: protocol.StatusHeartbeat, DeviceID: devID,
		DevToken: tok.DevToken, SourceIP: DefaultHomeIP,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.HandleBind(protocol.BindRequest{
		DeviceID: devID, UserToken: login.UserToken,
		Sender: core.SenderApp, SourceIP: DefaultHomeIP,
	}); !errors.Is(err, protocol.ErrOutsideWindow) {
		t.Errorf("bind after 30s = %v, want ErrOutsideWindow", err)
	}
}

// TestNarrativeKonkeReplaceQuirk pins the device #3 story: it has no
// unbinding operation — a new binding replaces the old one — which makes
// it immune to binding DoS, exposes it to unbinding-by-replacement, and
// still resists hijacking because the attacker cannot feed the device a
// fresh token.
func TestNarrativeKonkeReplaceQuirk(t *testing.T) {
	p, _ := vendors.ByVendor("KONKE")

	// Immunity to A2: even with the attacker squatting first, the user's
	// own binding displaces them.
	a2, err := Evaluate(p.Design, core.VariantA2)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Outcome.Succeeded() {
		t.Errorf("A2 on KONKE = %v (%s), want failure via replacement", a2.Outcome, a2.Detail)
	}

	// The same quirk yields disconnection...
	tb, err := New(p.Design)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.SetupVictim(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Attacker().ForgeBind(tb.DeviceID()); err != nil {
		t.Fatal(err)
	}
	st, err := tb.Shadow()
	if err != nil {
		t.Fatal(err)
	}
	if st.BoundUser != DefaultAttackerUser {
		t.Fatalf("binding not replaced: %+v", st)
	}
	// ...but not control: "it uses the device token for device
	// authentication and the attacker cannot send a fresh token to the
	// device".
	if tb.AttackerHasControl() {
		t.Error("attacker controls the KONKE device, the token pairing should prevent it")
	}
	// The cut-off is visible on the device side: its next heartbeat
	// carries a stale session token and is rejected.
	if err := tb.VictimDevice().Heartbeat(); !errors.Is(err, protocol.ErrAuthFailed) {
		t.Errorf("stale device heartbeat = %v, want ErrAuthFailed", err)
	}
}

// TestNarrativeTPLinkStatusForgeryUnbinds pins the device #8 story: "we
// forged its device status messages and this also causes device unbinding
// with the user. We also forged an unbinding message with type
// Unbind:DevId, and this can also successfully unbind the user."
func TestNarrativeTPLinkStatusForgeryUnbinds(t *testing.T) {
	p, _ := vendors.ByVendor("TP-LINK")

	for _, attack := range []struct {
		name string
		run  func(tb *Testbed) error
	}{
		{"status forgery (A3-4)", func(tb *Testbed) error {
			_, err := tb.Attacker().ForgeStatus(tb.DeviceID(), protocol.StatusRegister, nil)
			return err
		}},
		{"Unbind:DevId (A3-1)", func(tb *Testbed) error {
			return tb.Attacker().ForgeUnbind(tb.DeviceID(), core.UnbindDevIDAlone)
		}},
	} {
		attack := attack
		t.Run(attack.name, func(t *testing.T) {
			tb, err := New(p.Design)
			if err != nil {
				t.Fatal(err)
			}
			if err := tb.SetupVictim(); err != nil {
				t.Fatal(err)
			}
			if err := attack.run(tb); err != nil {
				t.Fatal(err)
			}
			st, err := tb.Shadow()
			if err != nil {
				t.Fatal(err)
			}
			if st.BoundUser != "" {
				t.Errorf("binding survived %s: %+v", attack.name, st)
			}
		})
	}
}

// TestNarrativeOzwiOnlineWindow pins the device #6 story: "Device #6 is
// hijacked when it is in the online state and not bound with any users."
func TestNarrativeOzwiOnlineWindow(t *testing.T) {
	p, _ := vendors.ByVendor("OZWI")
	res, err := Evaluate(p.Design, core.VariantA4x2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.Succeeded() {
		t.Fatalf("A4-2 on OZWI = %v (%s), want success", res.Outcome, res.Detail)
	}

	// In contrast, once the user is bound, the same bind forgery fails:
	// the window is the online-unbound state only.
	a41, err := Evaluate(p.Design, core.VariantA4x1)
	if err != nil {
		t.Fatal(err)
	}
	if a41.Outcome.Succeeded() {
		t.Errorf("A4-1 on OZWI succeeded; the cloud checks the bound user outside the window")
	}
}

// TestNarrativeBelkinUnbindCheckMissing pins the device #1 A3-2 finding:
// the cloud verifies the user token is valid but not that it belongs to
// the bound user.
func TestNarrativeBelkinUnbindCheckMissing(t *testing.T) {
	p, _ := vendors.ByVendor("Belkin")
	tb, err := New(p.Design)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.SetupVictim(); err != nil {
		t.Fatal(err)
	}
	// The attacker's own, perfectly valid token revokes the victim's
	// binding.
	if err := tb.Attacker().ForgeUnbind(tb.DeviceID(), core.UnbindDevIDUserToken); err != nil {
		t.Fatal(err)
	}
	st, err := tb.Shadow()
	if err != nil {
		t.Fatal(err)
	}
	if st.BoundUser != "" {
		t.Errorf("binding survived: %+v", st)
	}
	// But the DevToken design still blocks the follow-up hijack.
	if _, err := tb.Attacker().ForgeBind(tb.DeviceID()); err != nil {
		t.Fatal(err)
	}
	if tb.AttackerHasControl() {
		t.Error("attacker controls a DevToken-authenticated device")
	}
}
