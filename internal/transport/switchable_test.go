package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/iotbind/iotbind/internal/protocol"
)

// switchable.go pins the Cloud conformance at compile time
// (var _ Cloud = (*Switchable)(nil)); the tests here pin the runtime
// contract Swap promises: one dispatched call runs entirely against one
// backend, no matter how many swaps land while it is in flight.

// namedCloud answers batches with its own name in every slot, after
// recording that it was entered. Only the methods the tests exercise
// are implemented; the embedded nil interface panics loudly on any
// other call.
type namedCloud struct {
	Cloud
	name    string
	entered atomic.Int64
}

func (n *namedCloud) HandleStatusBatch(req protocol.StatusBatchRequest) (protocol.StatusBatchResponse, error) {
	n.entered.Add(1)
	resp := protocol.StatusBatchResponse{Results: make([]protocol.StatusBatchResult, len(req.Items))}
	for i := range req.Items {
		resp.Results[i] = protocol.StatusBatchResult{
			Response: protocol.StatusResponse{SessionNonce: n.name},
		}
	}
	return resp, nil
}

func (n *namedCloud) HandleStatus(protocol.StatusRequest) (protocol.StatusResponse, error) {
	n.entered.Add(1)
	return protocol.StatusResponse{SessionNonce: n.name}, nil
}

// TestSwitchableBatchNeverStraddlesASwap hammers HandleStatusBatch from
// many goroutines while others spam Swap between two backends. Every
// batch response must be stamped by exactly one backend — a mixed
// response would mean the wrapper re-resolved the backend mid-call,
// which is precisely the failover bug the atomic box exists to prevent.
// Run under -race this also proves Swap/dispatch need no external locks.
func TestSwitchableBatchNeverStraddlesASwap(t *testing.T) {
	a := &namedCloud{name: "a"}
	b := &namedCloud{name: "b"}
	s := NewSwitchable(a)

	const (
		callers  = 8
		batches  = 200
		swappers = 4
	)
	var (
		wg   sync.WaitGroup
		stop atomic.Bool
	)
	for i := 0; i < swappers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for !stop.Load() {
				if i%2 == 0 {
					s.Swap(a)
				} else {
					s.Swap(b)
				}
			}
		}(i)
	}

	errs := make(chan error, callers)
	var callersWG sync.WaitGroup
	for c := 0; c < callers; c++ {
		callersWG.Add(1)
		go func(c int) {
			defer callersWG.Done()
			req := protocol.StatusBatchRequest{Items: make([]protocol.StatusRequest, 16)}
			for i := range req.Items {
				req.Items[i] = protocol.StatusRequest{Kind: protocol.StatusHeartbeat, DeviceID: fmt.Sprintf("AA:BB:CC:00:00:%02X", i)}
			}
			for n := 0; n < batches; n++ {
				resp, err := s.HandleStatusBatch(req)
				if err != nil {
					errs <- err
					return
				}
				first := resp.Results[0].Response.SessionNonce
				if first != "a" && first != "b" {
					errs <- fmt.Errorf("caller %d: batch stamped by unknown backend %q", c, first)
					return
				}
				for i, r := range resp.Results {
					if r.Response.SessionNonce != first {
						errs <- fmt.Errorf("caller %d batch %d: item %d stamped %q, item 0 stamped %q — one call straddled a swap",
							c, n, i, r.Response.SessionNonce, first)
						return
					}
				}
			}
		}(c)
	}
	callersWG.Wait()
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if a.entered.Load()+b.entered.Load() != callers*batches {
		t.Fatalf("backends served %d calls, want %d", a.entered.Load()+b.entered.Load(), callers*batches)
	}
}

// TestSwitchableSwapRedirectsNextCall is the sequential contract: a call
// after Swap must land on the new backend, and Current must report it.
func TestSwitchableSwapRedirectsNextCall(t *testing.T) {
	a := &namedCloud{name: "a"}
	b := &namedCloud{name: "b"}
	s := NewSwitchable(a)
	if resp, _ := s.HandleStatus(protocol.StatusRequest{}); resp.SessionNonce != "a" {
		t.Fatalf("before swap served by %q", resp.SessionNonce)
	}
	s.Swap(b)
	if got := s.Current(); got != Cloud(b) {
		t.Fatalf("Current() = %v after swap", got)
	}
	if resp, _ := s.HandleStatus(protocol.StatusRequest{}); resp.SessionNonce != "b" {
		t.Fatalf("after swap served by %q", resp.SessionNonce)
	}
}
