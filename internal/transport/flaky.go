package transport

import (
	"errors"
	"fmt"
	"sync"

	"github.com/iotbind/iotbind/internal/protocol"
)

// ErrUnavailable is the default injected transport failure.
var ErrUnavailable = errors.New("transport: cloud unavailable")

// Flaky wraps a Cloud and injects transport failures on a deterministic
// schedule — every Nth call fails — for exercising the agents' error
// paths: half-finished setups, dropped heartbeats, rejected forgeries.
type Flaky struct {
	inner Cloud

	mu        sync.Mutex
	failEvery int
	calls     int
	failures  int
	err       error
}

var _ Cloud = (*Flaky)(nil)

// NewFlaky wraps a cloud so that every failEvery-th call (1-based) fails
// with ErrUnavailable. failEvery <= 0 never fails.
func NewFlaky(inner Cloud, failEvery int) *Flaky {
	return &Flaky{inner: inner, failEvery: failEvery, err: ErrUnavailable}
}

// SetError overrides the injected error. A nil err restores the default
// ErrUnavailable: injecting a literal nil would make tick wrap a nil
// target, producing errors that satisfy err != nil but match nothing under
// errors.Is — every ErrUnavailable caller would misclassify the outage.
func (f *Flaky) SetError(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = ErrUnavailable
	}
	f.err = err
}

// Calls reports how many calls the wrapper has seen.
func (f *Flaky) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Failures reports how many calls were failed by injection.
func (f *Flaky) Failures() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failures
}

// tick advances the schedule, returning the injected error when this call
// should fail.
func (f *Flaky) tick(op string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.failEvery > 0 && f.calls%f.failEvery == 0 {
		f.failures++
		return fmt.Errorf("flaky %s: %w", op, f.err)
	}
	return nil
}

// RegisterUser implements Cloud.
func (f *Flaky) RegisterUser(req protocol.RegisterUserRequest) error {
	if err := f.tick("register-user"); err != nil {
		return err
	}
	return f.inner.RegisterUser(req)
}

// Login implements Cloud.
func (f *Flaky) Login(req protocol.LoginRequest) (protocol.LoginResponse, error) {
	if err := f.tick("login"); err != nil {
		return protocol.LoginResponse{}, err
	}
	return f.inner.Login(req)
}

// RequestDeviceToken implements Cloud.
func (f *Flaky) RequestDeviceToken(req protocol.DeviceTokenRequest) (protocol.DeviceTokenResponse, error) {
	if err := f.tick("device-token"); err != nil {
		return protocol.DeviceTokenResponse{}, err
	}
	return f.inner.RequestDeviceToken(req)
}

// RequestBindToken implements Cloud.
func (f *Flaky) RequestBindToken(req protocol.BindTokenRequest) (protocol.BindTokenResponse, error) {
	if err := f.tick("bind-token"); err != nil {
		return protocol.BindTokenResponse{}, err
	}
	return f.inner.RequestBindToken(req)
}

// HandleStatus implements Cloud.
func (f *Flaky) HandleStatus(req protocol.StatusRequest) (protocol.StatusResponse, error) {
	if err := f.tick("status"); err != nil {
		return protocol.StatusResponse{}, err
	}
	return f.inner.HandleStatus(req)
}

// HandleStatusBatch implements Cloud. A batch is one wire message, so it
// ticks the schedule once: the whole batch is delivered or lost together.
func (f *Flaky) HandleStatusBatch(req protocol.StatusBatchRequest) (protocol.StatusBatchResponse, error) {
	if err := f.tick("status-batch"); err != nil {
		return protocol.StatusBatchResponse{}, err
	}
	return f.inner.HandleStatusBatch(req)
}

// HandleBind implements Cloud.
func (f *Flaky) HandleBind(req protocol.BindRequest) (protocol.BindResponse, error) {
	if err := f.tick("bind"); err != nil {
		return protocol.BindResponse{}, err
	}
	return f.inner.HandleBind(req)
}

// HandleUnbind implements Cloud.
func (f *Flaky) HandleUnbind(req protocol.UnbindRequest) error {
	if err := f.tick("unbind"); err != nil {
		return err
	}
	return f.inner.HandleUnbind(req)
}

// HandleControl implements Cloud.
func (f *Flaky) HandleControl(req protocol.ControlRequest) (protocol.ControlResponse, error) {
	if err := f.tick("control"); err != nil {
		return protocol.ControlResponse{}, err
	}
	return f.inner.HandleControl(req)
}

// PushUserData implements Cloud.
func (f *Flaky) PushUserData(req protocol.PushUserDataRequest) error {
	if err := f.tick("user-data"); err != nil {
		return err
	}
	return f.inner.PushUserData(req)
}

// Readings implements Cloud.
func (f *Flaky) Readings(req protocol.ReadingsRequest) (protocol.ReadingsResponse, error) {
	if err := f.tick("readings"); err != nil {
		return protocol.ReadingsResponse{}, err
	}
	return f.inner.Readings(req)
}

// HandleShare implements Cloud.
func (f *Flaky) HandleShare(req protocol.ShareRequest) error {
	if err := f.tick("share"); err != nil {
		return err
	}
	return f.inner.HandleShare(req)
}

// Shares implements Cloud.
func (f *Flaky) Shares(req protocol.SharesRequest) (protocol.SharesResponse, error) {
	if err := f.tick("shares"); err != nil {
		return protocol.SharesResponse{}, err
	}
	return f.inner.Shares(req)
}

// HandleDelegate implements Cloud.
func (f *Flaky) HandleDelegate(req protocol.DelegateRequest) (protocol.DelegateResponse, error) {
	if err := f.tick("delegate"); err != nil {
		return protocol.DelegateResponse{}, err
	}
	return f.inner.HandleDelegate(req)
}

// HandleRevokeDelegation implements Cloud.
func (f *Flaky) HandleRevokeDelegation(req protocol.RevokeDelegationRequest) error {
	if err := f.tick("revoke-delegation"); err != nil {
		return err
	}
	return f.inner.HandleRevokeDelegation(req)
}

// ListDelegations implements Cloud.
func (f *Flaky) ListDelegations(req protocol.ListDelegationsRequest) (protocol.ListDelegationsResponse, error) {
	if err := f.tick("delegations"); err != nil {
		return protocol.ListDelegationsResponse{}, err
	}
	return f.inner.ListDelegations(req)
}

// ShadowState implements Cloud.
func (f *Flaky) ShadowState(req protocol.ShadowStateRequest) (protocol.ShadowStateResponse, error) {
	if err := f.tick("shadow"); err != nil {
		return protocol.ShadowStateResponse{}, err
	}
	return f.inner.ShadowState(req)
}
