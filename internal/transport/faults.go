package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/iotbind/iotbind/internal/protocol"
)

// ErrPartitioned is injected while a party sits inside a partition window.
// It wraps ErrUnavailable so existing errors.Is(err, ErrUnavailable)
// callers keep matching.
var ErrPartitioned = fmt.Errorf("transport: network partitioned: %w", ErrUnavailable)

// Well-known party names for fault targeting. A FaultPlane keys partition
// windows by these, matching the three parties of the paper's threat model.
const (
	PartyDevice   = "device"
	PartyApp      = "app"
	PartyAttacker = "attacker"
)

// FaultPlane is the shared scheduler behind a set of Faults wrappers: one
// seeded RNG, one clock, one partition table, so an experiment's whole
// network degrades under a single reproducible plan. All methods are safe
// for concurrent use.
//
// Four fault kinds compose:
//
//   - fail-before-delivery: the call never reaches the inner cloud (the
//     dropped-request case Flaky already models, but probabilistic);
//   - fail-after-delivery: the inner cloud runs — and may mutate state —
//     but the caller sees ErrUnavailable, as if the response was lost.
//     This is the at-least-once case that forces retry deduplication;
//   - added latency: each delivered call advances the injected clock, so
//     time-coupled policies (heartbeat TTLs, button windows) feel the
//     slow network;
//   - partitions: a per-party window during which every call from that
//     party fails with ErrPartitioned before delivery.
type FaultPlane struct {
	mu            sync.Mutex
	rng           *rand.Rand
	now           func() time.Time
	advance       func(time.Duration)
	failBefore    float64
	failAfter     float64
	latency       time.Duration
	latencyJitter time.Duration
	partitions    map[string]time.Time

	calls       int
	droppedPre  int
	droppedPost int
	partitioned int
}

// FaultOption configures a FaultPlane.
type FaultOption func(*FaultPlane)

// WithFailBeforeRate sets the probability (0..1) that a call fails before
// reaching the inner cloud.
func WithFailBeforeRate(rate float64) FaultOption {
	return func(p *FaultPlane) { p.failBefore = rate }
}

// WithFailAfterRate sets the probability (0..1) that a call's response is
// lost after the inner cloud already processed it.
func WithFailAfterRate(rate float64) FaultOption {
	return func(p *FaultPlane) { p.failAfter = rate }
}

// WithAddedLatency advances the injected clock by base plus a uniform
// jitter in [0, jitter) on every delivered call. Without a clock (see
// WithFaultClock) latency is a no-op.
func WithAddedLatency(base, jitter time.Duration) FaultOption {
	return func(p *FaultPlane) {
		p.latency = base
		p.latencyJitter = jitter
	}
}

// WithFaultClock injects the experiment clock: now positions partition
// windows, advance applies added latency. Both may be nil.
func WithFaultClock(now func() time.Time, advance func(time.Duration)) FaultOption {
	return func(p *FaultPlane) {
		if now != nil {
			p.now = now
		}
		p.advance = advance
	}
}

// NewFaultPlane builds a fault plane whose schedule is a pure function of
// the seed and the call sequence, per the determinism conventions.
func NewFaultPlane(seed int64, opts ...FaultOption) *FaultPlane {
	p := &FaultPlane{
		rng:        rand.New(rand.NewSource(seed)),
		now:        time.Now,
		partitions: make(map[string]time.Time),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Wrap returns a Cloud view of inner whose calls are subjected to this
// plane's faults, attributed to the named party.
func (p *FaultPlane) Wrap(inner Cloud, party string) *Faults {
	return &Faults{inner: inner, party: party, plane: p}
}

// Partition opens (or extends) a partition window for the named party:
// every call it makes before now+d fails with ErrPartitioned.
func (p *FaultPlane) Partition(party string, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.partitions[party] = p.now().Add(d)
}

// Heal closes the named party's partition window immediately.
func (p *FaultPlane) Heal(party string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.partitions, party)
}

// Calls reports how many calls the plane has scheduled.
func (p *FaultPlane) Calls() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// Failures reports every injected failure — before-delivery, after-delivery
// and partition drops — mirroring Flaky.Failures.
func (p *FaultPlane) Failures() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.droppedPre + p.droppedPost + p.partitioned
}

// FailuresBefore reports calls dropped before reaching the inner cloud
// (partition drops included).
func (p *FaultPlane) FailuresBefore() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.droppedPre + p.partitioned
}

// FailuresAfter reports responses lost after the inner cloud processed the
// call — each one is a state mutation the caller never heard about.
func (p *FaultPlane) FailuresAfter() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.droppedPost
}

// before applies latency, partition and fail-before faults for one call.
func (p *FaultPlane) before(party, op string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	if p.advance != nil && (p.latency > 0 || p.latencyJitter > 0) {
		d := p.latency
		if p.latencyJitter > 0 {
			d += time.Duration(p.rng.Int63n(int64(p.latencyJitter)))
		}
		p.advance(d)
	}
	if until, ok := p.partitions[party]; ok {
		if p.now().Before(until) {
			p.partitioned++
			return fmt.Errorf("faults %s %s: %w", party, op, ErrPartitioned)
		}
		delete(p.partitions, party)
	}
	if p.failBefore > 0 && p.rng.Float64() < p.failBefore {
		p.droppedPre++
		return fmt.Errorf("faults %s %s: request lost: %w", party, op, ErrUnavailable)
	}
	return nil
}

// after applies the fail-after-delivery fault for one call that the inner
// cloud has already processed.
func (p *FaultPlane) after(party, op string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failAfter > 0 && p.rng.Float64() < p.failAfter {
		p.droppedPost++
		return fmt.Errorf("faults %s %s: response lost: %w", party, op, ErrUnavailable)
	}
	return nil
}

// Faults subjects one party's view of a cloud to the plane's faults. It
// composes with the other wrappers: stamp the source first, then wrap the
// stamped transport, then (outermost) a retry layer if the agent has one.
type Faults struct {
	inner Cloud
	party string
	plane *FaultPlane
}

var _ Cloud = (*Faults)(nil)

// faultCall runs one operation through the plane's fault schedule. On a
// fail-after fault the inner response is discarded — the caller must not
// see data from a delivery it will be told failed.
func faultCall[T any](f *Faults, op string, call func() (T, error)) (T, error) {
	var zero T
	if err := f.plane.before(f.party, op); err != nil {
		return zero, err
	}
	out, err := call()
	if err != nil {
		return out, err
	}
	if err := f.plane.after(f.party, op); err != nil {
		return zero, err
	}
	return out, nil
}

// faultCallErr adapts faultCall for response-less operations.
func faultCallErr(f *Faults, op string, call func() error) error {
	_, err := faultCall(f, op, func() (struct{}, error) {
		return struct{}{}, call()
	})
	return err
}

// RegisterUser implements Cloud.
func (f *Faults) RegisterUser(req protocol.RegisterUserRequest) error {
	return faultCallErr(f, "register-user", func() error { return f.inner.RegisterUser(req) })
}

// Login implements Cloud.
func (f *Faults) Login(req protocol.LoginRequest) (protocol.LoginResponse, error) {
	return faultCall(f, "login", func() (protocol.LoginResponse, error) { return f.inner.Login(req) })
}

// RequestDeviceToken implements Cloud.
func (f *Faults) RequestDeviceToken(req protocol.DeviceTokenRequest) (protocol.DeviceTokenResponse, error) {
	return faultCall(f, "device-token", func() (protocol.DeviceTokenResponse, error) { return f.inner.RequestDeviceToken(req) })
}

// RequestBindToken implements Cloud.
func (f *Faults) RequestBindToken(req protocol.BindTokenRequest) (protocol.BindTokenResponse, error) {
	return faultCall(f, "bind-token", func() (protocol.BindTokenResponse, error) { return f.inner.RequestBindToken(req) })
}

// HandleStatus implements Cloud.
func (f *Faults) HandleStatus(req protocol.StatusRequest) (protocol.StatusResponse, error) {
	return faultCall(f, "status", func() (protocol.StatusResponse, error) { return f.inner.HandleStatus(req) })
}

// HandleStatusBatch implements Cloud. A batch is one wire message: it
// draws one fault schedule slot, so the whole batch is dropped (before or
// after delivery) or delivered together — exactly how a real coalesced
// frame fails.
func (f *Faults) HandleStatusBatch(req protocol.StatusBatchRequest) (protocol.StatusBatchResponse, error) {
	return faultCall(f, "status-batch", func() (protocol.StatusBatchResponse, error) { return f.inner.HandleStatusBatch(req) })
}

// HandleBind implements Cloud.
func (f *Faults) HandleBind(req protocol.BindRequest) (protocol.BindResponse, error) {
	return faultCall(f, "bind", func() (protocol.BindResponse, error) { return f.inner.HandleBind(req) })
}

// HandleUnbind implements Cloud.
func (f *Faults) HandleUnbind(req protocol.UnbindRequest) error {
	return faultCallErr(f, "unbind", func() error { return f.inner.HandleUnbind(req) })
}

// HandleControl implements Cloud.
func (f *Faults) HandleControl(req protocol.ControlRequest) (protocol.ControlResponse, error) {
	return faultCall(f, "control", func() (protocol.ControlResponse, error) { return f.inner.HandleControl(req) })
}

// PushUserData implements Cloud.
func (f *Faults) PushUserData(req protocol.PushUserDataRequest) error {
	return faultCallErr(f, "user-data", func() error { return f.inner.PushUserData(req) })
}

// Readings implements Cloud.
func (f *Faults) Readings(req protocol.ReadingsRequest) (protocol.ReadingsResponse, error) {
	return faultCall(f, "readings", func() (protocol.ReadingsResponse, error) { return f.inner.Readings(req) })
}

// HandleShare implements Cloud.
func (f *Faults) HandleShare(req protocol.ShareRequest) error {
	return faultCallErr(f, "share", func() error { return f.inner.HandleShare(req) })
}

// Shares implements Cloud.
func (f *Faults) Shares(req protocol.SharesRequest) (protocol.SharesResponse, error) {
	return faultCall(f, "shares", func() (protocol.SharesResponse, error) { return f.inner.Shares(req) })
}

// HandleDelegate implements Cloud.
func (f *Faults) HandleDelegate(req protocol.DelegateRequest) (protocol.DelegateResponse, error) {
	return faultCall(f, "delegate", func() (protocol.DelegateResponse, error) { return f.inner.HandleDelegate(req) })
}

// HandleRevokeDelegation implements Cloud.
func (f *Faults) HandleRevokeDelegation(req protocol.RevokeDelegationRequest) error {
	return faultCallErr(f, "revoke-delegation", func() error { return f.inner.HandleRevokeDelegation(req) })
}

// ListDelegations implements Cloud.
func (f *Faults) ListDelegations(req protocol.ListDelegationsRequest) (protocol.ListDelegationsResponse, error) {
	return faultCall(f, "delegations", func() (protocol.ListDelegationsResponse, error) { return f.inner.ListDelegations(req) })
}

// ShadowState implements Cloud.
func (f *Faults) ShadowState(req protocol.ShadowStateRequest) (protocol.ShadowStateResponse, error) {
	return faultCall(f, "shadow", func() (protocol.ShadowStateResponse, error) { return f.inner.ShadowState(req) })
}
