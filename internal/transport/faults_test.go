package transport_test

import (
	"errors"
	"testing"
	"time"

	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
)

// probe drives n ShadowState calls through a faulted cloud and returns the
// outcome pattern (true = delivered successfully).
func probe(t *testing.T, c transport.Cloud, n int) []bool {
	t.Helper()
	out := make([]bool, n)
	for i := range out {
		_, err := c.ShadowState(protocol.ShadowStateRequest{DeviceID: "d"})
		if err != nil && !errors.Is(err, transport.ErrUnavailable) {
			t.Fatalf("call %d: non-injected error %v", i, err)
		}
		out[i] = err == nil
	}
	return out
}

// TestFaultsDeterministicSchedule proves the fault schedule is a pure
// function of the seed: two planes with the same seed produce identical
// outcome patterns, and a different seed produces a different one.
func TestFaultsDeterministicSchedule(t *testing.T) {
	pattern := func(seed int64) []bool {
		plane := transport.NewFaultPlane(seed, transport.WithFailBeforeRate(0.4))
		return probe(t, plane.Wrap(newService(t), transport.PartyApp), 64)
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 64-call schedules")
	}
}

// TestFaultsFailAfterDelivery proves the at-least-once case Flaky cannot
// express: the inner cloud processes the call (state mutates) while the
// caller sees ErrUnavailable and no response data.
func TestFaultsFailAfterDelivery(t *testing.T) {
	svc := newService(t)
	if err := newServiceUser(t, svc); err != nil {
		t.Fatal(err)
	}
	login, err := svc.Login(protocol.LoginRequest{UserID: "u", Password: "p"})
	if err != nil {
		t.Fatal(err)
	}

	plane := transport.NewFaultPlane(1, transport.WithFailAfterRate(1.0))
	faulted := plane.Wrap(svc, transport.PartyApp)

	resp, err := faulted.HandleBind(protocol.BindRequest{DeviceID: "d", UserToken: login.UserToken})
	if !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("bind error = %v, want ErrUnavailable", err)
	}
	if resp.BoundUser != "" {
		t.Errorf("failed delivery leaked response data: %+v", resp)
	}
	// The caller was told the bind failed — but the cloud applied it.
	st, err := svc.ShadowState(protocol.ShadowStateRequest{DeviceID: "d"})
	if err != nil {
		t.Fatal(err)
	}
	if st.BoundUser != "u" {
		t.Errorf("bound user = %q, want %q (fail-after must mutate state)", st.BoundUser, "u")
	}
	if plane.FailuresAfter() != 1 {
		t.Errorf("FailuresAfter = %d, want 1", plane.FailuresAfter())
	}
}

// TestFaultsPartitionWindow proves partitions are per party and expire
// with the injected clock.
func TestFaultsPartitionWindow(t *testing.T) {
	now := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	plane := transport.NewFaultPlane(1, transport.WithFaultClock(clock, nil))
	svc := newService(t)
	dev := plane.Wrap(svc, transport.PartyDevice)
	app := plane.Wrap(svc, transport.PartyApp)

	plane.Partition(transport.PartyDevice, time.Minute)

	if _, err := dev.ShadowState(protocol.ShadowStateRequest{DeviceID: "d"}); !errors.Is(err, transport.ErrPartitioned) {
		t.Fatalf("partitioned device error = %v, want ErrPartitioned", err)
	}
	if _, err := dev.ShadowState(protocol.ShadowStateRequest{DeviceID: "d"}); !errors.Is(err, transport.ErrUnavailable) {
		t.Error("ErrPartitioned must also match ErrUnavailable for existing callers")
	}
	if _, err := app.ShadowState(protocol.ShadowStateRequest{DeviceID: "d"}); err != nil {
		t.Fatalf("partition leaked to another party: %v", err)
	}

	now = now.Add(2 * time.Minute) // window lapses
	if _, err := dev.ShadowState(protocol.ShadowStateRequest{DeviceID: "d"}); err != nil {
		t.Fatalf("call after window lapsed: %v", err)
	}

	plane.Partition(transport.PartyDevice, time.Minute)
	plane.Heal(transport.PartyDevice)
	if _, err := dev.ShadowState(protocol.ShadowStateRequest{DeviceID: "d"}); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
}

// TestFaultsAddedLatency proves delivered calls advance the injected
// clock, so time-coupled policies feel the slow network.
func TestFaultsAddedLatency(t *testing.T) {
	now := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	advance := func(d time.Duration) { now = now.Add(d) }
	plane := transport.NewFaultPlane(1,
		transport.WithAddedLatency(250*time.Millisecond, 0),
		transport.WithFaultClock(func() time.Time { return now }, advance))
	faulted := plane.Wrap(newService(t), transport.PartyDevice)

	start := now
	for i := 0; i < 4; i++ {
		if _, err := faulted.ShadowState(protocol.ShadowStateRequest{DeviceID: "d"}); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := now.Sub(start), time.Second; got != want {
		t.Errorf("clock advanced %v over 4 calls, want %v", got, want)
	}
}

// TestFaultsFailureAccounting proves Calls/Failures stay consistent with
// the Flaky conventions: every injected failure is counted exactly once.
func TestFaultsFailureAccounting(t *testing.T) {
	plane := transport.NewFaultPlane(3,
		transport.WithFailBeforeRate(0.3),
		transport.WithFailAfterRate(0.3))
	pattern := probe(t, plane.Wrap(newService(t), transport.PartyApp), 100)

	delivered := 0
	for _, ok := range pattern {
		if ok {
			delivered++
		}
	}
	if plane.Calls() != 100 {
		t.Errorf("Calls = %d, want 100", plane.Calls())
	}
	if got := plane.Failures(); got != 100-delivered {
		t.Errorf("Failures = %d, observed %d failed calls", got, 100-delivered)
	}
	if plane.FailuresBefore()+plane.FailuresAfter() != plane.Failures() {
		t.Errorf("failure split %d+%d != total %d",
			plane.FailuresBefore(), plane.FailuresAfter(), plane.Failures())
	}
	if plane.Failures() == 0 {
		t.Error("0 injected failures at 30%+30% over 100 calls — schedule broken")
	}
}

// TestFlakySetErrorNilKeepsTypedFailures covers the SetError(nil) bug: a
// nil injected error must not break errors.Is(err, ErrUnavailable)
// classification with a wrapped nil target.
func TestFlakySetErrorNilKeepsTypedFailures(t *testing.T) {
	flaky := transport.NewFlaky(newService(t), 1)
	flaky.SetError(nil)
	_, err := flaky.ShadowState(protocol.ShadowStateRequest{DeviceID: "d"})
	if err == nil {
		t.Fatal("injected failure returned nil error")
	}
	if !errors.Is(err, transport.ErrUnavailable) {
		t.Errorf("error after SetError(nil) = %v, want ErrUnavailable match", err)
	}
	if flaky.Failures() != 1 {
		t.Errorf("Failures = %d, want 1", flaky.Failures())
	}
}
