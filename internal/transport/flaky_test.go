package transport_test

import (
	"errors"
	"testing"

	"github.com/iotbind/iotbind/internal/app"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/device"
	"github.com/iotbind/iotbind/internal/localnet"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
)

func TestFlakySchedule(t *testing.T) {
	svc := newService(t)
	flaky := transport.NewFlaky(svc, 3) // every 3rd call fails

	var failures int
	for i := 0; i < 9; i++ {
		if _, err := flaky.ShadowState(protocol.ShadowStateRequest{DeviceID: "d"}); err != nil {
			if !errors.Is(err, transport.ErrUnavailable) {
				t.Fatalf("call %d: unexpected error %v", i, err)
			}
			failures++
		}
	}
	if failures != 3 {
		t.Errorf("failures = %d, want 3", failures)
	}
	if flaky.Calls() != 9 || flaky.Failures() != 3 {
		t.Errorf("counters = %d calls, %d failures", flaky.Calls(), flaky.Failures())
	}
}

func TestFlakyNeverFailsWhenDisabled(t *testing.T) {
	svc := newService(t)
	flaky := transport.NewFlaky(svc, 0)
	for i := 0; i < 20; i++ {
		if _, err := flaky.ShadowState(protocol.ShadowStateRequest{DeviceID: "d"}); err != nil {
			t.Fatalf("injected failure with failEvery=0: %v", err)
		}
	}
}

func TestFlakyCustomError(t *testing.T) {
	svc := newService(t)
	flaky := transport.NewFlaky(svc, 1)
	custom := errors.New("the backhaul is down")
	flaky.SetError(custom)
	if _, err := flaky.ShadowState(protocol.ShadowStateRequest{DeviceID: "d"}); !errors.Is(err, custom) {
		t.Errorf("error = %v, want custom", err)
	}
}

// TestAgentsSurfaceTransportFailures drives the device and app agents
// over a failing transport: errors must propagate wrapped (so callers can
// match ErrUnavailable) and a retry after the outage must succeed — a
// half-finished setup does not wedge the agents.
func TestAgentsSurfaceTransportFailures(t *testing.T) {
	svc := newService(t)
	flaky := transport.NewFlaky(svc, 1) // everything fails for now
	home := localnet.NewNetwork("home", "203.0.113.7")

	dev, err := device.New(device.Config{
		ID: "d", FactorySecret: "s", LocalName: "plug", Model: "plug",
	}, svcDesign(), flaky)
	if err != nil {
		t.Fatal(err)
	}
	if err := home.Join(dev); err != nil {
		t.Fatal(err)
	}

	user, err := app.New("u@example.com", "pw", svcDesign(), flaky, home)
	if err != nil {
		t.Fatal(err)
	}

	// Outage: every step surfaces the injected failure.
	if err := user.RegisterAccount(); !errors.Is(err, transport.ErrUnavailable) {
		t.Errorf("register during outage = %v", err)
	}
	if err := user.Login(); !errors.Is(err, transport.ErrUnavailable) {
		t.Errorf("login during outage = %v", err)
	}
	if err := dev.Provision(localnet.Provisioning{WiFiSSID: "home", WiFiPassword: "pw"}); !errors.Is(err, transport.ErrUnavailable) {
		t.Errorf("provision during outage = %v", err)
	}

	// Recovery: switch the schedule off; the same agents finish setup.
	flakyOff := transport.NewFlaky(svc, 0)
	dev2, err := device.New(device.Config{
		ID: "d", FactorySecret: "s", LocalName: "plug-2", Model: "plug",
	}, svcDesign(), flakyOff)
	if err != nil {
		t.Fatal(err)
	}
	if err := home.Join(dev2); err != nil {
		t.Fatal(err)
	}
	user2, err := app.New("u2@example.com", "pw", svcDesign(), flakyOff, home)
	if err != nil {
		t.Fatal(err)
	}
	if err := user2.RegisterAccount(); err != nil {
		t.Fatal(err)
	}
	if err := user2.Login(); err != nil {
		t.Fatal(err)
	}
	if err := user2.SetupDevice("plug-2", nil); err != nil {
		t.Fatalf("setup after recovery: %v", err)
	}
}

// svcDesign mirrors newService's design for agent construction.
func svcDesign() core.DesignSpec {
	return core.DesignSpec{
		Name:        "t",
		DeviceAuth:  core.AuthDevID,
		Binding:     core.BindACLApp,
		UnbindForms: []core.UnbindForm{core.UnbindDevIDUserToken},
	}
}
