// Package transport defines the client-side interface to an IoT cloud and
// the source-address stamping that separates the parties: every request a
// party sends carries the public IP of the network it sits on, assigned by
// the transport rather than the sender (so it cannot be forged, matching
// how the paper's source-IP co-location defence works on device #7).
package transport

import "github.com/iotbind/iotbind/internal/protocol"

// Cloud is the full operation surface of an emulated IoT cloud. The
// in-process implementation is cloud.Service; the HTTP client in the
// httpapi package implements the same interface over the wire.
type Cloud interface {
	// RegisterUser creates a user account.
	RegisterUser(protocol.RegisterUserRequest) error
	// Login authenticates a user and issues a UserToken.
	Login(protocol.LoginRequest) (protocol.LoginResponse, error)
	// RequestDeviceToken issues a dynamic device token (Figure 3 Type 1).
	RequestDeviceToken(protocol.DeviceTokenRequest) (protocol.DeviceTokenResponse, error)
	// RequestBindToken issues a capability binding token (Figure 4c).
	RequestBindToken(protocol.BindTokenRequest) (protocol.BindTokenResponse, error)
	// HandleStatus processes a device status message.
	HandleStatus(protocol.StatusRequest) (protocol.StatusResponse, error)
	// HandleStatusBatch processes many status messages in one round trip
	// with per-item outcomes — the hot-path amortization for
	// heartbeat-dominated traffic.
	HandleStatusBatch(protocol.StatusBatchRequest) (protocol.StatusBatchResponse, error)
	// HandleBind processes a binding-creation message.
	HandleBind(protocol.BindRequest) (protocol.BindResponse, error)
	// HandleUnbind processes a binding-revocation message.
	HandleUnbind(protocol.UnbindRequest) error
	// HandleControl relays a command from the bound user to the device.
	HandleControl(protocol.ControlRequest) (protocol.ControlResponse, error)
	// PushUserData stores user state for delivery to the device.
	PushUserData(protocol.PushUserDataRequest) error
	// Readings returns device readings as visible to the bound user or a
	// guest.
	Readings(protocol.ReadingsRequest) (protocol.ReadingsResponse, error)
	// HandleShare grants or revokes guest access (many-to-one binding).
	HandleShare(protocol.ShareRequest) error
	// Shares lists a device's guests, as the owner sees them.
	Shares(protocol.SharesRequest) (protocol.SharesResponse, error)
	// HandleDelegate records a scoped, expiring, depth-limited delegation
	// grant and mints a delegation token from it.
	HandleDelegate(protocol.DelegateRequest) (protocol.DelegateResponse, error)
	// HandleRevokeDelegation withdraws a delegation grant (cascading to
	// derived grants on designs that revoke cascades).
	HandleRevokeDelegation(protocol.RevokeDelegationRequest) error
	// ListDelegations lists a device's delegation grants as visible to
	// the caller.
	ListDelegations(protocol.ListDelegationsRequest) (protocol.ListDelegationsResponse, error)
	// ShadowState inspects a device shadow (diagnostics).
	ShadowState(protocol.ShadowStateRequest) (protocol.ShadowStateResponse, error)
}

// stamped wraps a Cloud and overwrites the SourceIP of every request with
// the wrapped party's address.
type stamped struct {
	cloud Cloud
	ip    string
}

var _ Cloud = (*stamped)(nil)

// StampSource returns a Cloud view whose requests all carry the given
// source address. Parties receive a stamped transport from the network
// they sit on; they cannot choose the address themselves.
func StampSource(cloud Cloud, ip string) Cloud {
	return &stamped{cloud: cloud, ip: ip}
}

func (s *stamped) RegisterUser(req protocol.RegisterUserRequest) error {
	return s.cloud.RegisterUser(req)
}

func (s *stamped) Login(req protocol.LoginRequest) (protocol.LoginResponse, error) {
	return s.cloud.Login(req)
}

func (s *stamped) RequestDeviceToken(req protocol.DeviceTokenRequest) (protocol.DeviceTokenResponse, error) {
	return s.cloud.RequestDeviceToken(req)
}

func (s *stamped) RequestBindToken(req protocol.BindTokenRequest) (protocol.BindTokenResponse, error) {
	return s.cloud.RequestBindToken(req)
}

func (s *stamped) HandleStatus(req protocol.StatusRequest) (protocol.StatusResponse, error) {
	req.SourceIP = s.ip
	return s.cloud.HandleStatus(req)
}

func (s *stamped) HandleStatusBatch(req protocol.StatusBatchRequest) (protocol.StatusBatchResponse, error) {
	// The batch travels as one wire message from one network, so a single
	// batch-level stamp covers every item; the cloud fans it out.
	req.SourceIP = s.ip
	return s.cloud.HandleStatusBatch(req)
}

func (s *stamped) HandleBind(req protocol.BindRequest) (protocol.BindResponse, error) {
	req.SourceIP = s.ip
	return s.cloud.HandleBind(req)
}

func (s *stamped) HandleUnbind(req protocol.UnbindRequest) error {
	req.SourceIP = s.ip
	return s.cloud.HandleUnbind(req)
}

func (s *stamped) HandleControl(req protocol.ControlRequest) (protocol.ControlResponse, error) {
	req.SourceIP = s.ip
	return s.cloud.HandleControl(req)
}

func (s *stamped) PushUserData(req protocol.PushUserDataRequest) error {
	return s.cloud.PushUserData(req)
}

func (s *stamped) Readings(req protocol.ReadingsRequest) (protocol.ReadingsResponse, error) {
	return s.cloud.Readings(req)
}

func (s *stamped) HandleShare(req protocol.ShareRequest) error {
	return s.cloud.HandleShare(req)
}

func (s *stamped) Shares(req protocol.SharesRequest) (protocol.SharesResponse, error) {
	return s.cloud.Shares(req)
}

func (s *stamped) HandleDelegate(req protocol.DelegateRequest) (protocol.DelegateResponse, error) {
	return s.cloud.HandleDelegate(req)
}

func (s *stamped) HandleRevokeDelegation(req protocol.RevokeDelegationRequest) error {
	return s.cloud.HandleRevokeDelegation(req)
}

func (s *stamped) ListDelegations(req protocol.ListDelegationsRequest) (protocol.ListDelegationsResponse, error) {
	return s.cloud.ListDelegations(req)
}

func (s *stamped) ShadowState(req protocol.ShadowStateRequest) (protocol.ShadowStateResponse, error) {
	return s.cloud.ShadowState(req)
}
