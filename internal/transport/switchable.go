package transport

import (
	"sync/atomic"

	"github.com/iotbind/iotbind/internal/protocol"
)

// Switchable is a Cloud whose backend can be replaced atomically while
// agents hold the wrapper. Crash-recovery harnesses use it to model a
// cloud restart under live traffic: agents (and their retry wrappers)
// keep one transport across the outage, the harness swaps the crashed
// instance for the recovered one, and in-flight redeliveries land on
// the new backend exactly as a reconnecting client's would.
type Switchable struct {
	cur atomic.Pointer[cloudBox]
}

// cloudBox wraps the interface value so it can live in an
// atomic.Pointer.
type cloudBox struct{ c Cloud }

var _ Cloud = (*Switchable)(nil)

// NewSwitchable returns a Switchable currently backed by c.
func NewSwitchable(c Cloud) *Switchable {
	s := &Switchable{}
	s.Swap(c)
	return s
}

// Swap atomically replaces the backend. Calls already dispatched to the
// old backend complete against it; every later call sees the new one.
func (s *Switchable) Swap(c Cloud) { s.cur.Store(&cloudBox{c: c}) }

// Current returns the live backend.
func (s *Switchable) Current() Cloud { return s.cur.Load().c }

func (s *Switchable) RegisterUser(req protocol.RegisterUserRequest) error {
	return s.Current().RegisterUser(req)
}

func (s *Switchable) Login(req protocol.LoginRequest) (protocol.LoginResponse, error) {
	return s.Current().Login(req)
}

func (s *Switchable) RequestDeviceToken(req protocol.DeviceTokenRequest) (protocol.DeviceTokenResponse, error) {
	return s.Current().RequestDeviceToken(req)
}

func (s *Switchable) RequestBindToken(req protocol.BindTokenRequest) (protocol.BindTokenResponse, error) {
	return s.Current().RequestBindToken(req)
}

func (s *Switchable) HandleStatus(req protocol.StatusRequest) (protocol.StatusResponse, error) {
	return s.Current().HandleStatus(req)
}

func (s *Switchable) HandleStatusBatch(req protocol.StatusBatchRequest) (protocol.StatusBatchResponse, error) {
	return s.Current().HandleStatusBatch(req)
}

func (s *Switchable) HandleBind(req protocol.BindRequest) (protocol.BindResponse, error) {
	return s.Current().HandleBind(req)
}

func (s *Switchable) HandleUnbind(req protocol.UnbindRequest) error {
	return s.Current().HandleUnbind(req)
}

func (s *Switchable) HandleControl(req protocol.ControlRequest) (protocol.ControlResponse, error) {
	return s.Current().HandleControl(req)
}

func (s *Switchable) PushUserData(req protocol.PushUserDataRequest) error {
	return s.Current().PushUserData(req)
}

func (s *Switchable) Readings(req protocol.ReadingsRequest) (protocol.ReadingsResponse, error) {
	return s.Current().Readings(req)
}

func (s *Switchable) HandleShare(req protocol.ShareRequest) error {
	return s.Current().HandleShare(req)
}

func (s *Switchable) Shares(req protocol.SharesRequest) (protocol.SharesResponse, error) {
	return s.Current().Shares(req)
}

func (s *Switchable) HandleDelegate(req protocol.DelegateRequest) (protocol.DelegateResponse, error) {
	return s.Current().HandleDelegate(req)
}

func (s *Switchable) HandleRevokeDelegation(req protocol.RevokeDelegationRequest) error {
	return s.Current().HandleRevokeDelegation(req)
}

func (s *Switchable) ListDelegations(req protocol.ListDelegationsRequest) (protocol.ListDelegationsResponse, error) {
	return s.Current().ListDelegations(req)
}

func (s *Switchable) ShadowState(req protocol.ShadowStateRequest) (protocol.ShadowStateResponse, error) {
	return s.Current().ShadowState(req)
}
