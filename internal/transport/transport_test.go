package transport_test

import (
	"testing"

	"github.com/iotbind/iotbind/internal/cloud"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/transport"
)

// recorder captures the SourceIP each request arrives with.
type recorder struct {
	transport.Cloud

	lastIP string
}

func (r *recorder) HandleStatus(req protocol.StatusRequest) (protocol.StatusResponse, error) {
	r.lastIP = req.SourceIP
	return r.Cloud.HandleStatus(req)
}

func (r *recorder) HandleBind(req protocol.BindRequest) (protocol.BindResponse, error) {
	r.lastIP = req.SourceIP
	return r.Cloud.HandleBind(req)
}

func (r *recorder) HandleUnbind(req protocol.UnbindRequest) error {
	r.lastIP = req.SourceIP
	return r.Cloud.HandleUnbind(req)
}

func (r *recorder) HandleControl(req protocol.ControlRequest) (protocol.ControlResponse, error) {
	r.lastIP = req.SourceIP
	return r.Cloud.HandleControl(req)
}

func newService(t *testing.T) *cloud.Service {
	t.Helper()
	design := core.DesignSpec{
		Name:        "t",
		DeviceAuth:  core.AuthDevID,
		Binding:     core.BindACLApp,
		UnbindForms: []core.UnbindForm{core.UnbindDevIDUserToken},
	}
	reg := cloud.NewRegistry()
	if err := reg.Add(cloud.DeviceRecord{ID: "d", FactorySecret: "s"}); err != nil {
		t.Fatal(err)
	}
	svc, err := cloud.NewService(design, reg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestStampOverridesSenderSuppliedSource proves a party cannot spoof its
// source address: whatever the request claims, the transport's address
// wins.
func TestStampOverridesSenderSuppliedSource(t *testing.T) {
	rec := &recorder{Cloud: newService(t)}
	stamped := transport.StampSource(rec, "203.0.113.7")

	if _, err := stamped.HandleStatus(protocol.StatusRequest{
		Kind:     protocol.StatusRegister,
		DeviceID: "d",
		SourceIP: "6.6.6.6", // spoofing attempt
	}); err != nil {
		t.Fatal(err)
	}
	if rec.lastIP != "203.0.113.7" {
		t.Errorf("status source = %q, want stamped address", rec.lastIP)
	}

	if err := newServiceUser(t, rec.Cloud); err != nil {
		t.Fatal(err)
	}
	login, err := stamped.Login(protocol.LoginRequest{UserID: "u", Password: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stamped.HandleBind(protocol.BindRequest{
		DeviceID: "d", UserToken: login.UserToken, SourceIP: "6.6.6.6",
	}); err != nil {
		t.Fatal(err)
	}
	if rec.lastIP != "203.0.113.7" {
		t.Errorf("bind source = %q, want stamped address", rec.lastIP)
	}
	if err := stamped.HandleUnbind(protocol.UnbindRequest{
		DeviceID: "d", UserToken: login.UserToken, SourceIP: "6.6.6.6",
	}); err != nil {
		t.Fatal(err)
	}
	if rec.lastIP != "203.0.113.7" {
		t.Errorf("unbind source = %q, want stamped address", rec.lastIP)
	}
}

func newServiceUser(t *testing.T, c transport.Cloud) error {
	t.Helper()
	return c.RegisterUser(protocol.RegisterUserRequest{UserID: "u", Password: "p"})
}

// TestStampPassesThroughNonNetworkCalls checks the calls without a source
// field still work through the wrapper.
func TestStampPassesThroughNonNetworkCalls(t *testing.T) {
	svc := newService(t)
	stamped := transport.StampSource(svc, "1.2.3.4")

	if err := stamped.RegisterUser(protocol.RegisterUserRequest{UserID: "x", Password: "y"}); err != nil {
		t.Fatal(err)
	}
	login, err := stamped.Login(protocol.LoginRequest{UserID: "x", Password: "y"})
	if err != nil {
		t.Fatal(err)
	}
	if login.UserToken == "" {
		t.Error("no token through stamped transport")
	}
	if _, err := stamped.ShadowState(protocol.ShadowStateRequest{DeviceID: "d"}); err != nil {
		t.Fatal(err)
	}
	if _, err := stamped.Readings(protocol.ReadingsRequest{DeviceID: "d", UserToken: login.UserToken}); err == nil {
		t.Error("readings for unbound user succeeded")
	}
}

// TestDistinctStampsShareOneCloud verifies two parties with different
// addresses hit the same underlying state.
func TestDistinctStampsShareOneCloud(t *testing.T) {
	svc := newService(t)
	home := transport.StampSource(svc, "203.0.113.7")
	lair := transport.StampSource(svc, "198.51.100.66")

	if _, err := home.HandleStatus(protocol.StatusRequest{Kind: protocol.StatusRegister, DeviceID: "d"}); err != nil {
		t.Fatal(err)
	}
	st, err := lair.ShadowState(protocol.ShadowStateRequest{DeviceID: "d"})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != core.StateOnline {
		t.Errorf("state through second stamp = %v, want online", st.State)
	}
}
