package discover_test

import (
	"testing"

	"github.com/iotbind/iotbind/internal/analysis"
	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/discover"
	"github.com/iotbind/iotbind/internal/vendors"
)

// findAttack returns the discovered attacks for one (scenario, goal).
func findAttack(attacks []discover.Attack, s discover.Scenario, g discover.Goal) []discover.Attack {
	var out []discover.Attack
	for _, a := range attacks {
		if a.Scenario == s && a.Goal == g {
			out = append(out, a)
		}
	}
	return out
}

func sameSequence(a []discover.Action, b ...discover.Action) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDiscoverA4x3ChainOnTPLink is the headline result: the searcher
// reinvents the paper's two-step hijack against device #8 — forge the
// unauthorized unbind, then forge the device-initiated bind — with no
// knowledge of the taxonomy.
func TestDiscoverA4x3ChainOnTPLink(t *testing.T) {
	p, ok := vendors.ByVendor("TP-LINK")
	if !ok {
		t.Fatal("no TP-LINK profile")
	}
	attacks, err := discover.Search(p.Design, 2)
	if err != nil {
		t.Fatal(err)
	}

	hijacks := findAttack(attacks, discover.ScenarioSteadyControl, discover.GoalHijack)
	if len(hijacks) == 0 {
		t.Fatalf("no hijack discovered; attacks: %v", attacks)
	}
	foundChain := false
	for _, h := range hijacks {
		if len(h.Sequence) != 2 {
			t.Errorf("hijack sequence %v has length %d, want minimal 2", h.Sequence, len(h.Sequence))
		}
		if sameSequence(h.Sequence, discover.ActForgeUnbindDevID, discover.ActForgeBind) {
			foundChain = true
		}
	}
	if !foundChain {
		t.Errorf("the A4-3 chain [forge-unbind-devid, forge-bind] was not among: %v", hijacks)
	}

	// Disconnection falls out at depth 1 (A3-1 and A3-4).
	disconnects := findAttack(attacks, discover.ScenarioSteadyControl, discover.GoalDisconnect)
	if len(disconnects) == 0 {
		t.Fatal("no disconnection discovered")
	}
	seqs := make(map[string]bool)
	for _, d := range disconnects {
		if len(d.Sequence) != 1 {
			t.Errorf("disconnect %v not minimal", d.Sequence)
			continue
		}
		seqs[d.Sequence[0].String()] = true
	}
	if !seqs["forge-unbind-devid"] || !seqs["forge-register"] {
		t.Errorf("expected both A3-1 and A3-4 single-step disconnects, got %v", disconnects)
	}
}

// TestDiscoverA4x1OnELink: one forged bind suffices against device #9.
func TestDiscoverA4x1OnELink(t *testing.T) {
	p, ok := vendors.ByVendor("E-Link Smart")
	if !ok {
		t.Fatal("no E-Link profile")
	}
	attacks, err := discover.Search(p.Design, 2)
	if err != nil {
		t.Fatal(err)
	}
	hijacks := findAttack(attacks, discover.ScenarioSteadyControl, discover.GoalHijack)
	if len(hijacks) != 1 || !sameSequence(hijacks[0].Sequence, discover.ActForgeBind) {
		t.Errorf("E-Link hijack = %v, want single [forge-bind]", hijacks)
	}
}

// TestDiscoverA1OnDLink: data injection and stealing with one forged
// heartbeat against device #10, and binding occupation pre-setup.
func TestDiscoverA1OnDLink(t *testing.T) {
	p, ok := vendors.ByVendor("D-LINK")
	if !ok {
		t.Fatal("no D-LINK profile")
	}
	attacks, err := discover.Search(p.Design, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, goal := range []discover.Goal{discover.GoalStealData, discover.GoalInjectData} {
		found := findAttack(attacks, discover.ScenarioSteadyControl, goal)
		if len(found) == 0 {
			t.Errorf("%v not discovered", goal)
			continue
		}
		if !sameSequence(found[0].Sequence, discover.ActForgeDataHeartbeat) {
			t.Errorf("%v via %v, want [forge-data-heartbeat]", goal, found[0].Sequence)
		}
	}
	occupations := findAttack(attacks, discover.ScenarioPreSetup, discover.GoalOccupy)
	if len(occupations) == 0 {
		t.Error("binding occupation not discovered pre-setup")
	}
}

// TestDiscoverA4x2WindowOnOZWI: the setup-window scenario finds the
// camera hijack of device #6.
func TestDiscoverA4x2WindowOnOZWI(t *testing.T) {
	p, ok := vendors.ByVendor("OZWI")
	if !ok {
		t.Fatal("no OZWI profile")
	}
	attacks, err := discover.Search(p.Design, 1)
	if err != nil {
		t.Fatal(err)
	}
	window := findAttack(attacks, discover.ScenarioSetupWindow, discover.GoalHijack)
	if len(window) != 1 || !sameSequence(window[0].Sequence, discover.ActForgeBind) {
		t.Errorf("OZWI window hijack = %v, want [forge-bind]", window)
	}
}

// TestDiscoverNothingAgainstSecureDesigns: the references resist search.
func TestDiscoverNothingAgainstSecureDesigns(t *testing.T) {
	for _, p := range []vendors.Profile{vendors.SecureReference(), vendors.RecommendedPractice()} {
		attacks, err := discover.Search(p.Design, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(attacks) != 0 {
			t.Errorf("%s: discovered %v", p.Design.Name, attacks)
		}
	}
}

// TestDiscoveryAgreesWithAnalyzer cross-validates the searcher against
// the rule-based analyzer on every vendor profile: a goal is discoverable
// exactly when the analyzer predicts a corresponding variant succeeds.
func TestDiscoveryAgreesWithAnalyzer(t *testing.T) {
	for _, p := range vendors.Profiles() {
		p := p
		t.Run(p.Vendor, func(t *testing.T) {
			attacks, err := discover.Search(p.Design, 2)
			if err != nil {
				t.Fatal(err)
			}
			pred := make(map[core.AttackVariant]core.Outcome)
			for _, f := range analysis.PredictAll(p.Design) {
				pred[f.Variant] = f.Outcome
			}
			ok := func(v core.AttackVariant) bool { return pred[v] == core.OutcomeSucceeded }

			wantHijackSteady := ok(core.VariantA4x1) || ok(core.VariantA4x3)
			wantHijackWindow := ok(core.VariantA4x2)
			wantDisconnect := ok(core.VariantA3x1) || ok(core.VariantA3x2) ||
				ok(core.VariantA3x3) || ok(core.VariantA3x4) ||
				ok(core.VariantA4x1) || ok(core.VariantA4x3)
			wantData := ok(core.VariantA1)
			wantOccupy := ok(core.VariantA2)

			checks := []struct {
				name     string
				scenario discover.Scenario
				goal     discover.Goal
				want     bool
			}{
				{"hijack-steady", discover.ScenarioSteadyControl, discover.GoalHijack, wantHijackSteady},
				{"hijack-window", discover.ScenarioSetupWindow, discover.GoalHijack, wantHijackWindow},
				{"disconnect", discover.ScenarioSteadyControl, discover.GoalDisconnect, wantDisconnect},
				{"steal", discover.ScenarioSteadyControl, discover.GoalStealData, wantData},
				{"inject", discover.ScenarioSteadyControl, discover.GoalInjectData, wantData},
				{"occupy", discover.ScenarioPreSetup, discover.GoalOccupy, wantOccupy},
			}
			for _, c := range checks {
				got := len(findAttack(attacks, c.scenario, c.goal)) > 0
				if got != c.want {
					t.Errorf("%s: discovered=%v, analyzer predicts %v\n  attacks: %v", c.name, got, c.want, attacks)
				}
			}
		})
	}
}

// TestSecureDesignsResistDeeperSearch pushes the search one level deeper
// against the secure references: still nothing at depth 3 (5^1+5^2+5^3
// sequences per scenario).
func TestSecureDesignsResistDeeperSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("depth-3 search is slow")
	}
	attacks, err := discover.Search(vendors.SecureReference().Design, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(attacks) != 0 {
		t.Errorf("depth-3 search found %v against the secure reference", attacks)
	}
}

func TestSearchValidatesDepth(t *testing.T) {
	if _, err := discover.Search(vendors.WorstCase().Design, 0); err == nil {
		t.Error("depth 0 accepted")
	}
}

func TestActionAndGoalStrings(t *testing.T) {
	for _, a := range discover.AllActions() {
		if a.String() == "" {
			t.Errorf("action %d has empty name", int(a))
		}
	}
	for _, g := range discover.AllGoals() {
		if g.String() == "" {
			t.Errorf("goal %d has empty name", int(g))
		}
	}
	for _, s := range discover.AllScenarios() {
		if s.String() == "" {
			t.Errorf("scenario %d has empty name", int(s))
		}
	}
	a := discover.Attack{
		Scenario: discover.ScenarioSteadyControl,
		Goal:     discover.GoalHijack,
		Sequence: []discover.Action{discover.ActForgeBind},
	}
	if a.String() == "" {
		t.Error("attack string empty")
	}
}
