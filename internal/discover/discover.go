// Package discover implements the automatic attack discovery the paper
// lists as future work (Section VIII): instead of hand-coding the Table II
// attack procedures, it searches breadth-first over sequences of attacker
// primitives — forged registrations, data heartbeats, binds and unbinds —
// executing every candidate sequence against a fresh live emulation and
// checking which adversarial goals it achieves.
//
// The search needs no knowledge of the taxonomy: the two-step hijack
// chain the paper constructs manually against device #8 (A4-3) falls out
// as the minimal sequence [forge-unbind-devid, forge-bind] for the hijack
// goal, and the secure reference designs yield no sequence for any goal at
// any depth.
package discover

import (
	"fmt"

	"github.com/iotbind/iotbind/internal/core"
	"github.com/iotbind/iotbind/internal/protocol"
	"github.com/iotbind/iotbind/internal/testbed"
)

// Action is one attacker primitive the searcher can compose.
type Action int

// The attacker's primitive moves, each a single forged message built from
// nothing but the leaked device ID and the attacker's own account.
const (
	// ActForgeRegister sends a forged registration status message.
	ActForgeRegister Action = iota + 1
	// ActForgeDataHeartbeat sends a forged heartbeat carrying a fake
	// sensor reading (and collects whatever the cloud returns).
	ActForgeDataHeartbeat
	// ActForgeBind sends a forged binding message pairing the victim's
	// device with the attacker's identity.
	ActForgeBind
	// ActForgeUnbindUserToken sends Unbind:(DevId, attacker's UserToken).
	ActForgeUnbindUserToken
	// ActForgeUnbindDevID sends Unbind:DevId.
	ActForgeUnbindDevID
)

// AllActions lists the attacker primitives.
func AllActions() []Action {
	return []Action{
		ActForgeRegister,
		ActForgeDataHeartbeat,
		ActForgeBind,
		ActForgeUnbindUserToken,
		ActForgeUnbindDevID,
	}
}

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActForgeRegister:
		return "forge-register"
	case ActForgeDataHeartbeat:
		return "forge-data-heartbeat"
	case ActForgeBind:
		return "forge-bind"
	case ActForgeUnbindUserToken:
		return "forge-unbind-usertoken"
	case ActForgeUnbindDevID:
		return "forge-unbind-devid"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Goal is an adversarial objective the searcher tries to reach.
type Goal int

// Adversarial goals, mirroring the consequences of Table II.
const (
	// GoalDisconnect: the victim loses the binding to their device.
	GoalDisconnect Goal = iota + 1
	// GoalHijack: the attacker commands the victim's real device.
	GoalHijack
	// GoalStealData: the attacker receives the victim's private data.
	GoalStealData
	// GoalInjectData: a fake reading reaches the still-bound victim.
	GoalInjectData
	// GoalOccupy: the victim cannot complete a fresh setup (binding
	// denial of service; evaluated in the pre-setup scenario).
	GoalOccupy
)

// AllGoals lists the goals.
func AllGoals() []Goal {
	return []Goal{GoalDisconnect, GoalHijack, GoalStealData, GoalInjectData, GoalOccupy}
}

// String implements fmt.Stringer.
func (g Goal) String() string {
	switch g {
	case GoalDisconnect:
		return "disconnect-victim"
	case GoalHijack:
		return "hijack-device"
	case GoalStealData:
		return "steal-user-data"
	case GoalInjectData:
		return "inject-fake-data"
	case GoalOccupy:
		return "occupy-binding"
	default:
		return fmt.Sprintf("Goal(%d)", int(g))
	}
}

// Scenario is the victim situation a sequence runs against.
type Scenario int

// Victim scenarios.
const (
	// ScenarioSteadyControl: the victim has completed setup and controls
	// the device (the Table II control state).
	ScenarioSteadyControl Scenario = iota + 1
	// ScenarioPreSetup: the device is still in its box; the victim sets
	// it up only after the attack sequence ran (the initial state).
	ScenarioPreSetup
	// ScenarioSetupWindow: the attack sequence runs inside the victim's
	// setup, after the device comes online but before the app binds (the
	// online-state window of A4-2).
	ScenarioSetupWindow
)

// AllScenarios lists the scenarios.
func AllScenarios() []Scenario {
	return []Scenario{ScenarioSteadyControl, ScenarioPreSetup, ScenarioSetupWindow}
}

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case ScenarioSteadyControl:
		return "steady-control"
	case ScenarioPreSetup:
		return "pre-setup"
	case ScenarioSetupWindow:
		return "setup-window"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Attack is one discovered minimal attack: a scenario, a goal, and the
// shortest action sequence that achieves it.
type Attack struct {
	// Scenario is the victim situation.
	Scenario Scenario
	// Goal is the objective achieved.
	Goal Goal
	// Sequence is a minimal-length action sequence achieving the goal.
	Sequence []Action
}

// String renders "scenario: goal via [actions]".
func (a Attack) String() string {
	return fmt.Sprintf("%v: %v via %v", a.Scenario, a.Goal, a.Sequence)
}

// Search explores attacker action sequences up to maxDepth against the
// design and returns, for every (scenario, goal) pair that is reachable,
// the minimal sequences achieving it (all sequences of the first depth at
// which the goal is reached, in deterministic order).
func Search(design core.DesignSpec, maxDepth int) ([]Attack, error) {
	if maxDepth < 1 {
		return nil, fmt.Errorf("discover: maxDepth %d must be at least 1", maxDepth)
	}
	var attacks []Attack
	for _, scenario := range AllScenarios() {
		found, err := searchScenario(design, scenario, maxDepth)
		if err != nil {
			return nil, err
		}
		attacks = append(attacks, found...)
	}
	return attacks, nil
}

// searchScenario runs the per-scenario breadth-first search.
func searchScenario(design core.DesignSpec, scenario Scenario, maxDepth int) ([]Attack, error) {
	var (
		attacks []Attack
		solved  = make(map[Goal]bool)
	)
	frontier := [][]Action{nil}
	for depth := 1; depth <= maxDepth; depth++ {
		var next [][]Action
		var solvedThisDepth []Goal
		for _, prefix := range frontier {
			for _, act := range AllActions() {
				seq := append(append([]Action(nil), prefix...), act)
				next = append(next, seq)
				achieved, err := execute(design, scenario, seq)
				if err != nil {
					return nil, fmt.Errorf("discover: %v %v: %w", scenario, seq, err)
				}
				for _, goal := range achieved {
					if solved[goal] {
						continue
					}
					attacks = append(attacks, Attack{Scenario: scenario, Goal: goal, Sequence: seq})
					solvedThisDepth = append(solvedThisDepth, goal)
				}
			}
		}
		// Minimality: a goal solved at this depth is closed for deeper
		// levels, but all sequences of the same depth are still
		// collected (the loop above ran the whole level already).
		for _, g := range solvedThisDepth {
			solved[g] = true
		}
		frontier = next
	}
	return attacks, nil
}

// execute replays one sequence against a fresh testbed and reports the
// goals it achieved.
func execute(design core.DesignSpec, scenario Scenario, seq []Action) ([]Goal, error) {
	tb, err := testbed.New(design)
	if err != nil {
		return nil, err
	}

	switch scenario {
	case ScenarioSteadyControl:
		if err := tb.SetupVictim(); err != nil {
			return nil, err
		}
		// The victim parks private data for the device — the stealing
		// target.
		if err := tb.VictimApp().PushSchedule(tb.DeviceID(), protocol.UserData{
			Kind: "schedule", Body: "private-schedule",
		}); err != nil {
			return nil, err
		}
		replay(tb, seq)
		return assessSteady(tb)

	case ScenarioPreSetup:
		replay(tb, seq)
		setupErr := tb.SetupVictim()
		if setupErr != nil || !tb.VictimHasControl() {
			return []Goal{GoalOccupy}, nil
		}
		return nil, nil

	case ScenarioSetupWindow:
		ran := false
		tb.SetPreBindHook(func() {
			ran = true
			replay(tb, seq)
		})
		_ = tb.VictimApp().SetupDevice(tb.VictimDevice().LocalName(), tbActionsOf(tb))
		if !ran {
			return nil, nil
		}
		if tb.AttackerHasControl() {
			return []Goal{GoalHijack}, nil
		}
		return nil, nil

	default:
		return nil, fmt.Errorf("discover: unknown scenario %v", scenario)
	}
}

// replay performs the attack sequence, ignoring per-action failures: the
// adversary simply tries.
func replay(tb *testbed.Testbed, seq []Action) {
	atk := tb.Attacker()
	id := tb.DeviceID()
	for _, act := range seq {
		switch act {
		case ActForgeRegister:
			_, _ = atk.ForgeStatus(id, protocol.StatusRegister, nil)
		case ActForgeDataHeartbeat:
			_, _ = atk.ForgeStatus(id, protocol.StatusHeartbeat, []protocol.Reading{
				{Name: "power_w", Value: injectedValue},
			})
		case ActForgeBind:
			_, _ = atk.ForgeBind(id)
		case ActForgeUnbindUserToken:
			_ = atk.ForgeUnbind(id, core.UnbindDevIDUserToken)
		case ActForgeUnbindDevID:
			_ = atk.ForgeUnbind(id, core.UnbindDevIDAlone)
		}
	}
}

// injectedValue is the sentinel reading the injection goal looks for.
const injectedValue = 31337

// assessSteady checks all steady-scenario goals. Read-only goals are
// evaluated before the hijack probe, which pumps device heartbeats.
func assessSteady(tb *testbed.Testbed) ([]Goal, error) {
	var achieved []Goal

	if len(tb.Attacker().StolenData()) > 0 {
		achieved = append(achieved, GoalStealData)
	}

	st, err := tb.Shadow()
	if err != nil {
		return nil, err
	}
	victimBound := st.BoundUser == testbed.DefaultVictimUser

	if !victimBound {
		achieved = append(achieved, GoalDisconnect)
	} else {
		readings, err := tb.VictimApp().Readings(tb.DeviceID())
		if err == nil {
			for _, r := range readings {
				if r.Value == injectedValue {
					achieved = append(achieved, GoalInjectData)
					break
				}
			}
		}
	}

	if tb.AttackerHasControl() {
		achieved = append(achieved, GoalHijack)
	}
	return achieved, nil
}

// tbActions adapts the testbed's device into the app's UserActions.
type tbActions struct{ tb *testbed.Testbed }

func (a tbActions) PressButton(localName string) error {
	return a.tb.VictimDevice().PressButton()
}

func (a tbActions) ResetDevice(localName string) error {
	a.tb.VictimDevice().Reset()
	return nil
}

func tbActionsOf(tb *testbed.Testbed) tbActions { return tbActions{tb: tb} }
