// Package delegation implements the per-device delegation lattice: a
// forest of scoped, expiring, depth-limited grants rooted at the bound
// owner. Grants are first-class records — Grant{Grantor, Grantee,
// Scopes, Expiry, Depth} — supporting re-delegation chains (owner →
// guest → sub-guest, platform-style delegation) and cascade revocation
// (revoking a grant severs every grant derived from it in one step).
//
// The lattice itself carries no lock: it lives inside a device shadow
// and is guarded by the shadow's mutex, which is what makes use-time
// chain verification atomic with respect to revocation — a control
// attempt racing a revocation observes either the whole grant chain or
// none of it.
//
// Each grantee holds at most one grant per device. Granting to an
// account that already holds a grant replaces the old grant and severs
// the subtree derived from it: the old derivations were justified by an
// authority that no longer exists, and keeping them would let a
// replacement silently widen (or orphan) a chain.
package delegation

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Scope is a bitmask of delegated capabilities.
type Scope uint8

// Delegable capabilities.
const (
	// ScopeControl permits queueing control commands.
	ScopeControl Scope = 1 << iota
	// ScopeRead permits reading the device's reported readings.
	ScopeRead
	// ScopeShare permits re-delegating (subject to remaining depth).
	ScopeShare
)

// scopeNames is the canonical name order (the wire and snapshot order).
var scopeNames = []struct {
	bit  Scope
	name string
}{
	{ScopeControl, "control"},
	{ScopeRead, "read"},
	{ScopeShare, "share"},
}

// Has reports whether every bit of want is present.
func (s Scope) Has(want Scope) bool { return s&want == want }

// Names renders the scope set as its sorted canonical names.
func (s Scope) Names() []string {
	out := make([]string, 0, len(scopeNames))
	for _, sn := range scopeNames {
		if s.Has(sn.bit) {
			out = append(out, sn.name)
		}
	}
	return out
}

// String implements fmt.Stringer ("control+read+share").
func (s Scope) String() string {
	names := s.Names()
	if len(names) == 0 {
		return "none"
	}
	out := names[0]
	for _, n := range names[1:] {
		out += "+" + n
	}
	return out
}

// ParseScopes converts capability names to a Scope. Unknown names and
// empty sets are rejected.
func ParseScopes(names []string) (Scope, error) {
	var s Scope
	for _, name := range names {
		found := false
		for _, sn := range scopeNames {
			if sn.name == name {
				s |= sn.bit
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("%w: unknown scope %q", ErrBadGrant, name)
		}
	}
	if s == 0 {
		return 0, fmt.Errorf("%w: empty scope set", ErrBadGrant)
	}
	return s, nil
}

// Grant is one delegation record: Grantor hands Grantee the Scopes
// until Expiry (zero = no expiry of its own), with Depth re-delegations
// left in the grantee's budget.
type Grant struct {
	Grantor string
	Grantee string
	Scopes  Scope
	Expiry  time.Time
	Depth   int
}

// Expired reports whether the grant is past its own expiry at now.
func (g Grant) Expired(now time.Time) bool {
	return !g.Expiry.IsZero() && now.After(g.Expiry)
}

// Lattice errors.
var (
	// ErrBadGrant covers structurally invalid grants (empty parties,
	// self-grants, grants to the owner, empty or unknown scopes,
	// negative depth).
	ErrBadGrant = errors.New("delegation: invalid grant")
	// ErrNoAuthority is returned when the grantor is neither the owner
	// nor the holder of a live grant carrying the share scope.
	ErrNoAuthority = errors.New("delegation: grantor holds no delegation authority")
	// ErrDepthExhausted is returned when the grantor's re-delegation
	// budget is spent.
	ErrDepthExhausted = errors.New("delegation: re-delegation depth exhausted")
	// ErrEscalation is returned under scope attenuation when a derived
	// grant would exceed its grantor's scopes, depth or lifetime.
	ErrEscalation = errors.New("delegation: derived grant exceeds grantor's authority")
)

// Lattice is one device's delegation forest, rooted at the bound owner.
// It is not self-synchronizing: the owning shadow's lock guards it.
type Lattice struct {
	root   string
	grants map[string]Grant // by grantee
	// gen counts mutations; memo entries stamped with an older gen are
	// dead. Memoization keeps the use-time chain walk off the steady
	// hot path: a verified (grantee, chain) pair is summarized as its
	// scope set plus the minimum expiry along the chain, valid until
	// the next mutation.
	gen  uint64
	memo map[string]authMemo
}

// authMemo is one positively verified authorization: the grantee's
// scopes and the earliest expiry on the chain from it to the root
// (zero = no link expires), valid while gen matches the lattice's.
type authMemo struct {
	scopes Scope
	expiry time.Time
	gen    uint64
}

// New returns an empty lattice rooted at the bound owner.
func New(root string) *Lattice {
	return &Lattice{root: root, grants: make(map[string]Grant)}
}

// Root returns the owner the lattice is rooted at.
func (l *Lattice) Root() string { return l.root }

// Len returns the number of live grants.
func (l *Lattice) Len() int { return len(l.grants) }

// Get returns the grantee's grant, if any.
func (l *Lattice) Get(grantee string) (Grant, bool) {
	g, ok := l.grants[grantee]
	return g, ok
}

// Grant validates and records g, replacing any existing grant the
// grantee holds (and severing the subtree derived from the replaced
// grant). attenuate enforces monotone attenuation on derived grants:
// scopes a subset of the grantor's, depth strictly below the grantor's
// budget, expiry no later than the grantor's. Without it, a grantee
// holding the share scope may mint any grant — the A6-2 escalation.
// It returns the grantees severed by replacement, sorted, so the caller
// can retire their minted tokens.
func (l *Lattice) Grant(g Grant, now time.Time, attenuate bool) ([]string, error) {
	if g.Grantor == "" || g.Grantee == "" {
		return nil, fmt.Errorf("%w: empty party", ErrBadGrant)
	}
	if g.Grantee == l.root {
		return nil, fmt.Errorf("%w: owner cannot be their own grantee", ErrBadGrant)
	}
	if g.Grantee == g.Grantor {
		return nil, fmt.Errorf("%w: self-grant", ErrBadGrant)
	}
	if g.Scopes == 0 {
		return nil, fmt.Errorf("%w: empty scope set", ErrBadGrant)
	}
	if g.Depth < 0 {
		return nil, fmt.Errorf("%w: negative depth", ErrBadGrant)
	}
	if g.Grantor != l.root {
		parent, ok := l.grants[g.Grantor]
		if !ok || !l.chainLive(g.Grantor, now) {
			return nil, ErrNoAuthority
		}
		if !parent.Scopes.Has(ScopeShare) {
			return nil, fmt.Errorf("%w: grant lacks the share scope", ErrNoAuthority)
		}
		if parent.Depth < 1 {
			return nil, ErrDepthExhausted
		}
		if attenuate {
			if !parent.Scopes.Has(g.Scopes) {
				return nil, fmt.Errorf("%w: scopes %v exceed grantor's %v", ErrEscalation, g.Scopes, parent.Scopes)
			}
			if g.Depth >= parent.Depth {
				return nil, fmt.Errorf("%w: depth %d not below grantor's budget %d", ErrEscalation, g.Depth, parent.Depth)
			}
			if !parent.Expiry.IsZero() && (g.Expiry.IsZero() || g.Expiry.After(parent.Expiry)) {
				return nil, fmt.Errorf("%w: grant outlives grantor's expiry", ErrEscalation)
			}
		}
		// A grant cycle (grantor delegating to their own ancestor) would
		// make chain walks diverge; attenuated or not, the grantee must
		// not sit on the grantor's own chain.
		cur := g.Grantor
		for steps := 0; steps <= len(l.grants) && cur != l.root; steps++ {
			p, ok := l.grants[cur]
			if !ok {
				break
			}
			if p.Grantor == g.Grantee {
				return nil, fmt.Errorf("%w: grant would create a delegation cycle", ErrBadGrant)
			}
			cur = p.Grantor
		}
	}
	var severed []string
	if _, exists := l.grants[g.Grantee]; exists {
		severed = l.severSubtree(g.Grantee)
	}
	l.grants[g.Grantee] = g
	l.gen++
	return severed, nil
}

// Revoke removes the grantee's grant. With cascade, every grant derived
// from it is severed atomically with it; without (the A6-1 permissive
// mode), derived grants survive their parent's revocation. It returns
// the severed grantees (the target first when present, the rest
// sorted); revoking an account holding no grant is a no-op.
func (l *Lattice) Revoke(grantee string, cascade bool) []string {
	if _, ok := l.grants[grantee]; !ok {
		return nil
	}
	l.gen++
	if !cascade {
		delete(l.grants, grantee)
		return []string{grantee}
	}
	sub := l.severSubtree(grantee)
	delete(l.grants, grantee)
	return append([]string{grantee}, sub...)
}

// severSubtree removes every grant transitively derived from grantee's
// grant (not the grant itself), returning the severed grantees sorted.
func (l *Lattice) severSubtree(grantee string) []string {
	var severed []string
	frontier := []string{grantee}
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for holder, g := range l.grants {
			for _, cut := range frontier {
				if g.Grantor == cut && holder != grantee {
					next = append(next, holder)
					break
				}
			}
		}
		for _, holder := range next {
			delete(l.grants, holder)
			severed = append(severed, holder)
		}
		frontier = next
	}
	sort.Strings(severed)
	return severed
}

// Authorize reports whether user may exercise scope at now: the user
// holds a live grant carrying the scope, and every grant on the chain
// from it to the owner is itself unexpired. The owner always may.
func (l *Lattice) Authorize(user string, scope Scope, now time.Time) bool {
	if user == l.root {
		return true
	}
	// A memoized verification from the current generation answers
	// without re-walking the chain; expiry can only move the verdict
	// from yes to no as now advances, and any mutation bumps gen.
	if m, ok := l.memo[user]; ok && m.gen == l.gen &&
		m.scopes.Has(scope) && (m.expiry.IsZero() || !now.After(m.expiry)) {
		return true
	}
	g, ok := l.grants[user]
	if !ok || !g.Scopes.Has(scope) || g.Expired(now) {
		return false
	}
	if !l.chainLive(user, now) {
		return false
	}
	l.memoize(user, g)
	return true
}

// memoize records a verified authorization: user's scopes plus the
// earliest expiry on their (just-walked, fully live) chain.
func (l *Lattice) memoize(user string, g Grant) {
	expiry := time.Time{}
	cur := user
	for steps := 0; ; steps++ {
		p, ok := l.grants[cur]
		if !ok || steps > len(l.grants) { // bounded like chainLive
			return
		}
		if !p.Expiry.IsZero() && (expiry.IsZero() || p.Expiry.Before(expiry)) {
			expiry = p.Expiry
		}
		if p.Grantor == l.root {
			break
		}
		cur = p.Grantor
	}
	if l.memo == nil {
		l.memo = make(map[string]authMemo)
	}
	l.memo[user] = authMemo{scopes: g.Scopes, expiry: expiry, gen: l.gen}
}

// chainLive walks the grant chain from holder to the root, requiring
// every link to exist and be unexpired. The walk is bounded by the
// grant count, so a corrupted import cannot loop it.
func (l *Lattice) chainLive(holder string, now time.Time) bool {
	cur := holder
	for steps := 0; steps <= len(l.grants); steps++ {
		g, ok := l.grants[cur]
		if !ok || g.Expired(now) {
			return false
		}
		if g.Grantor == l.root {
			return true
		}
		cur = g.Grantor
	}
	return false
}

// DirectGrantees lists the accounts holding a grant directly from the
// owner, sorted — the flat guest list the share compatibility surface
// reports.
func (l *Lattice) DirectGrantees() []string {
	var out []string
	for grantee, g := range l.grants {
		if g.Grantor == l.root {
			out = append(out, grantee)
		}
	}
	sort.Strings(out)
	return out
}

// Grants exports every grant sorted by grantee — the deterministic
// snapshot and listing order.
func (l *Lattice) Grants() []Grant {
	out := make([]Grant, 0, len(l.grants))
	for _, g := range l.grants {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Grantee < out[j].Grantee })
	return out
}

// Import rebuilds a lattice from exported grants. Structure is checked
// (no grants to the root, no self-grants, no duplicate grantees); grant
// semantics are not re-validated — the grants were validated when made,
// under whatever policy the design then enforced.
func Import(root string, grants []Grant) (*Lattice, error) {
	l := New(root)
	for _, g := range grants {
		if g.Grantor == "" || g.Grantee == "" || g.Grantee == root || g.Grantee == g.Grantor || g.Scopes == 0 {
			return nil, fmt.Errorf("%w: grant %q->%q", ErrBadGrant, g.Grantor, g.Grantee)
		}
		if _, dup := l.grants[g.Grantee]; dup {
			return nil, fmt.Errorf("%w: duplicate grantee %q", ErrBadGrant, g.Grantee)
		}
		l.grants[g.Grantee] = g
	}
	return l, nil
}
