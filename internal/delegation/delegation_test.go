package delegation

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)

func mustGrant(t *testing.T, l *Lattice, g Grant, attenuate bool) []string {
	t.Helper()
	severed, err := l.Grant(g, t0, attenuate)
	if err != nil {
		t.Fatalf("Grant(%+v) = %v", g, err)
	}
	return severed
}

func TestScopeParsing(t *testing.T) {
	s, err := ParseScopes([]string{"control", "share"})
	if err != nil || s != ScopeControl|ScopeShare {
		t.Fatalf("ParseScopes = %v, %v", s, err)
	}
	if got := s.Names(); !reflect.DeepEqual(got, []string{"control", "share"}) {
		t.Fatalf("Names() = %v", got)
	}
	if _, err := ParseScopes([]string{"root"}); !errors.Is(err, ErrBadGrant) {
		t.Fatalf("unknown scope accepted: %v", err)
	}
	if _, err := ParseScopes(nil); !errors.Is(err, ErrBadGrant) {
		t.Fatalf("empty scope set accepted: %v", err)
	}
	if (ScopeControl | ScopeRead).String() != "control+read" {
		t.Fatalf("String() = %q", (ScopeControl | ScopeRead).String())
	}
}

func TestGrantChainAndAuthorize(t *testing.T) {
	l := New("owner")
	mustGrant(t, l, Grant{Grantor: "owner", Grantee: "guest", Scopes: ScopeControl | ScopeRead | ScopeShare, Depth: 2}, true)
	mustGrant(t, l, Grant{Grantor: "guest", Grantee: "sub", Scopes: ScopeControl, Depth: 0}, true)

	if !l.Authorize("owner", ScopeControl|ScopeShare, t0) {
		t.Fatal("owner lost authority")
	}
	if !l.Authorize("guest", ScopeControl, t0) || !l.Authorize("sub", ScopeControl, t0) {
		t.Fatal("chain authorization failed")
	}
	if l.Authorize("sub", ScopeRead, t0) {
		t.Fatal("sub-guest read scope not granted but authorized")
	}
	if l.Authorize("stranger", ScopeControl, t0) {
		t.Fatal("stranger authorized")
	}
	if got := l.DirectGrantees(); !reflect.DeepEqual(got, []string{"guest"}) {
		t.Fatalf("DirectGrantees = %v", got)
	}
}

func TestGrantValidation(t *testing.T) {
	l := New("owner")
	cases := []struct {
		g    Grant
		want error
	}{
		{Grant{Grantor: "owner", Grantee: "owner", Scopes: ScopeControl}, ErrBadGrant},
		{Grant{Grantor: "x", Grantee: "x", Scopes: ScopeControl}, ErrBadGrant},
		{Grant{Grantor: "owner", Grantee: "g"}, ErrBadGrant},
		{Grant{Grantor: "owner", Grantee: "g", Scopes: ScopeControl, Depth: -1}, ErrBadGrant},
		{Grant{Grantor: "stranger", Grantee: "g", Scopes: ScopeControl}, ErrNoAuthority},
	}
	for i, c := range cases {
		if _, err := l.Grant(c.g, t0, true); !errors.Is(err, c.want) {
			t.Fatalf("case %d: Grant = %v, want %v", i, err, c.want)
		}
	}

	// A grantee without the share scope cannot re-delegate at all.
	mustGrant(t, l, Grant{Grantor: "owner", Grantee: "reader", Scopes: ScopeRead, Depth: 3}, true)
	if _, err := l.Grant(Grant{Grantor: "reader", Grantee: "g", Scopes: ScopeRead}, t0, true); !errors.Is(err, ErrNoAuthority) {
		t.Fatalf("shareless re-delegation = %v", err)
	}
	// Depth 0 exhausts the budget even with the share scope.
	mustGrant(t, l, Grant{Grantor: "owner", Grantee: "spent", Scopes: ScopeShare | ScopeControl, Depth: 0}, true)
	if _, err := l.Grant(Grant{Grantor: "spent", Grantee: "g", Scopes: ScopeControl}, t0, true); !errors.Is(err, ErrDepthExhausted) {
		t.Fatalf("depth-0 re-delegation = %v", err)
	}
}

func TestScopeAttenuation(t *testing.T) {
	l := New("owner")
	exp := t0.Add(time.Hour)
	mustGrant(t, l, Grant{Grantor: "owner", Grantee: "guest", Scopes: ScopeRead | ScopeShare, Expiry: exp, Depth: 2}, true)

	// Escalations rejected under attenuation.
	esc := []Grant{
		{Grantor: "guest", Grantee: "sub", Scopes: ScopeControl, Depth: 0, Expiry: exp},               // scope widening
		{Grantor: "guest", Grantee: "sub", Scopes: ScopeRead, Depth: 2, Expiry: exp},                  // depth not below budget
		{Grantor: "guest", Grantee: "sub", Scopes: ScopeRead, Depth: 0},                               // outlives grantor (no expiry)
		{Grantor: "guest", Grantee: "sub", Scopes: ScopeRead, Depth: 0, Expiry: exp.Add(time.Second)}, // later expiry
	}
	for i, g := range esc {
		if _, err := l.Grant(g, t0, true); !errors.Is(err, ErrEscalation) {
			t.Fatalf("escalation %d accepted: %v", i, err)
		}
	}
	// The same widening is accepted without attenuation — A6-2.
	if _, err := l.Grant(esc[0], t0, false); err != nil {
		t.Fatalf("permissive escalation rejected: %v", err)
	}
	if !l.Authorize("sub", ScopeControl, t0) {
		t.Fatal("escalated control not live under permissive design")
	}
}

func TestExpiryKillsChain(t *testing.T) {
	l := New("owner")
	exp := t0.Add(time.Minute)
	mustGrant(t, l, Grant{Grantor: "owner", Grantee: "guest", Scopes: ScopeControl | ScopeShare, Expiry: exp, Depth: 1}, true)
	mustGrant(t, l, Grant{Grantor: "guest", Grantee: "sub", Scopes: ScopeControl, Expiry: exp, Depth: 0}, true)

	if !l.Authorize("sub", ScopeControl, exp) {
		t.Fatal("unexpired chain refused")
	}
	after := exp.Add(time.Second)
	if l.Authorize("sub", ScopeControl, after) || l.Authorize("guest", ScopeControl, after) {
		t.Fatal("expired chain still authorizes")
	}
	// Expired grantors cannot extend the chain either.
	if _, err := l.Grant(Grant{Grantor: "guest", Grantee: "late", Scopes: ScopeControl}, after, false); !errors.Is(err, ErrNoAuthority) {
		t.Fatalf("expired grantor granted: %v", err)
	}
}

func TestCascadeRevocation(t *testing.T) {
	l := New("owner")
	all := ScopeControl | ScopeRead | ScopeShare
	mustGrant(t, l, Grant{Grantor: "owner", Grantee: "a", Scopes: all, Depth: 3}, true)
	mustGrant(t, l, Grant{Grantor: "a", Grantee: "b", Scopes: all, Depth: 2}, true)
	mustGrant(t, l, Grant{Grantor: "b", Grantee: "c", Scopes: ScopeControl, Depth: 0}, true)
	mustGrant(t, l, Grant{Grantor: "owner", Grantee: "z", Scopes: ScopeControl, Depth: 0}, true)

	severed := l.Revoke("a", true)
	if !reflect.DeepEqual(severed, []string{"a", "b", "c"}) {
		t.Fatalf("cascade severed %v", severed)
	}
	for _, user := range []string{"a", "b", "c"} {
		if l.Authorize(user, ScopeControl, t0) {
			t.Fatalf("%s survived cascade", user)
		}
	}
	if !l.Authorize("z", ScopeControl, t0) {
		t.Fatal("sibling grant severed by unrelated cascade")
	}
	if got := l.Revoke("a", true); got != nil {
		t.Fatalf("double revoke severed %v", got)
	}
}

func TestNonCascadeLeavesResidual(t *testing.T) {
	l := New("owner")
	all := ScopeControl | ScopeShare
	mustGrant(t, l, Grant{Grantor: "owner", Grantee: "guest", Scopes: all, Depth: 1}, false)
	mustGrant(t, l, Grant{Grantor: "guest", Grantee: "alt", Scopes: ScopeControl, Depth: 0}, false)

	if got := l.Revoke("guest", false); !reflect.DeepEqual(got, []string{"guest"}) {
		t.Fatalf("non-cascade severed %v", got)
	}
	// A6-1: the derived grant survives, but its chain is broken, so
	// use-time chain checks still block it...
	if l.Authorize("alt", ScopeControl, t0) {
		t.Fatal("broken chain authorized")
	}
	// ...which is exactly why the attack needs the token path (no
	// lattice walk) or a surviving re-grant; the record itself remains.
	if _, ok := l.Get("alt"); !ok {
		t.Fatal("residual grant vanished without cascade")
	}
}

func TestReplacementSeversOldSubtree(t *testing.T) {
	l := New("owner")
	all := ScopeControl | ScopeRead | ScopeShare
	mustGrant(t, l, Grant{Grantor: "owner", Grantee: "guest", Scopes: all, Depth: 2}, true)
	mustGrant(t, l, Grant{Grantor: "guest", Grantee: "sub", Scopes: ScopeControl, Depth: 0}, true)

	severed := mustGrant(t, l, Grant{Grantor: "owner", Grantee: "guest", Scopes: ScopeRead, Depth: 0}, true)
	if !reflect.DeepEqual(severed, []string{"sub"}) {
		t.Fatalf("replacement severed %v", severed)
	}
	if l.Authorize("guest", ScopeControl, t0) || l.Authorize("sub", ScopeControl, t0) {
		t.Fatal("replaced grant's old authority survived")
	}
	if !l.Authorize("guest", ScopeRead, t0) {
		t.Fatal("replacement grant not live")
	}
}

func TestCycleRejected(t *testing.T) {
	l := New("owner")
	all := ScopeControl | ScopeShare
	mustGrant(t, l, Grant{Grantor: "owner", Grantee: "a", Scopes: all, Depth: 3}, false)
	mustGrant(t, l, Grant{Grantor: "a", Grantee: "b", Scopes: all, Depth: 2}, false)
	if _, err := l.Grant(Grant{Grantor: "b", Grantee: "a", Scopes: ScopeControl}, t0, false); !errors.Is(err, ErrBadGrant) {
		t.Fatalf("cycle accepted: %v", err)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	l := New("owner")
	all := ScopeControl | ScopeRead | ScopeShare
	mustGrant(t, l, Grant{Grantor: "owner", Grantee: "b", Scopes: all, Expiry: t0.Add(time.Hour), Depth: 2}, true)
	mustGrant(t, l, Grant{Grantor: "b", Grantee: "a", Scopes: ScopeRead, Expiry: t0.Add(time.Minute), Depth: 0}, true)

	grants := l.Grants()
	if len(grants) != 2 || grants[0].Grantee != "a" || grants[1].Grantee != "b" {
		t.Fatalf("Grants() order: %+v", grants)
	}
	l2, err := Import("owner", grants)
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	if !reflect.DeepEqual(l2.Grants(), grants) {
		t.Fatalf("round trip diverged: %+v vs %+v", l2.Grants(), grants)
	}
	if !l2.Authorize("a", ScopeRead, t0) {
		t.Fatal("imported chain dead")
	}

	if _, err := Import("owner", []Grant{{Grantor: "x", Grantee: "owner", Scopes: ScopeRead}}); !errors.Is(err, ErrBadGrant) {
		t.Fatalf("grant to root imported: %v", err)
	}
	if _, err := Import("owner", append(grants, grants[0])); !errors.Is(err, ErrBadGrant) {
		t.Fatalf("duplicate grantee imported: %v", err)
	}
}
