package jsonpool

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestEncodeRoundTrip(t *testing.T) {
	b := Get()
	defer b.Put()
	if err := b.Encode(map[string]int{"n": 7}); err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out["n"] != 7 || b.Len() != len(b.Bytes()) {
		t.Errorf("round trip = %v (len %d/%d)", out, b.Len(), len(b.Bytes()))
	}
}

func TestGetReturnsEmptyBuffer(t *testing.T) {
	b := Get()
	if err := b.Encode("leftover"); err != nil {
		t.Fatal(err)
	}
	b.Put()
	if got := Get(); got.Len() != 0 {
		t.Errorf("reused buffer not reset: %q", got.Bytes())
	}
}

// TestSteadyStateEncodeIsAllocationFree pins the pool's whole point: after
// warmup, a Get/Encode/Put cycle reuses the same backing array and encoder.
func TestSteadyStateEncodeIsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	payload := struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
	}{Name: "power_w", Value: 7}

	avg := testing.AllocsPerRun(200, func() {
		b := Get()
		if err := b.Encode(payload); err != nil {
			t.Fatal(err)
		}
		b.Put()
	})
	if avg > 1 {
		t.Errorf("steady-state encode = %.1f allocs/op, want <= 1", avg)
	}
}

// TestOversizedBuffersAreNotRetained proves a giant frame's backing array
// is dropped at Put instead of pinned in the pool.
func TestOversizedBuffersAreNotRetained(t *testing.T) {
	b := Get()
	if err := b.Encode(strings.Repeat("x", maxRetainedCap+1)); err != nil {
		t.Fatal(err)
	}
	cap := b.Writer().Cap()
	if cap <= maxRetainedCap {
		t.Skipf("encode stayed within the retention cap (%d)", cap)
	}
	b.Put()
	if got := Get(); got.Writer().Cap() == cap {
		t.Error("oversized backing array came back from the pool")
	}
}

// TestEncodeIndentRestoresCompactMode proves an indented use (snapshot
// files) cannot leak formatting into the pooled encoder's next borrow.
func TestEncodeIndentRestoresCompactMode(t *testing.T) {
	b := Get()
	defer b.Put()
	if err := b.EncodeIndent(map[string]int{"n": 7}, "", "  "); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b.Bytes()), "\n  ") {
		t.Errorf("EncodeIndent produced compact output: %q", b.Bytes())
	}
	mark := b.Len()
	if err := b.Encode(map[string]int{"n": 8}); err != nil {
		t.Fatal(err)
	}
	if compact := string(b.Bytes()[mark:]); strings.Contains(compact, "  ") {
		t.Errorf("encode after EncodeIndent still indented: %q", compact)
	}
}

// TestSteadyStateEncodeIndentIsAllocationFree extends the allocation
// guard to the indented path the snapshot codec uses.
func TestSteadyStateEncodeIndentIsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	payload := struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
	}{Name: "power_w", Value: 7}

	avg := testing.AllocsPerRun(200, func() {
		b := Get()
		if err := b.EncodeIndent(payload, "", "  "); err != nil {
			t.Fatal(err)
		}
		b.Put()
	})
	if avg > 1 {
		t.Errorf("steady-state indented encode = %.1f allocs/op, want <= 1", avg)
	}
}
