// Package jsonpool provides pooled JSON encode buffers for the remote
// front ends' hot paths. The per-message pattern it replaces —
// json.Marshal into a fresh byte slice, wrapped in a fresh reader, with a
// fresh io.ReadAll buffer on the response side — allocates several times
// per call; at heartbeat volume that is the dominant garbage source on
// both front ends. A pooled Buffer couples a bytes.Buffer with a
// json.Encoder permanently bound to it, so steady-state encodes reuse the
// same backing array and encoder machinery with zero new allocations.
package jsonpool

import (
	"bytes"
	"encoding/json"
	"sync"
)

// maxRetainedCap bounds the backing arrays the pool holds on to. A rare
// giant frame (e.g. a maximum-size batch) would otherwise pin its buffer
// forever; past this cap the buffer is dropped for the GC instead of
// pooled.
const maxRetainedCap = 1 << 18 // 256 KiB

// Buffer is a reusable encode/read buffer. Obtain with Get, release with
// Put; the bytes returned by Bytes are valid only until the Put.
type Buffer struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var pool = sync.Pool{
	New: func() any {
		b := &Buffer{}
		b.enc = json.NewEncoder(&b.buf)
		return b
	},
}

// Get returns an empty pooled buffer.
func Get() *Buffer {
	b := pool.Get().(*Buffer)
	b.buf.Reset()
	return b
}

// Put returns a buffer to the pool. Oversized backing arrays are dropped
// so one large frame cannot pin memory for the process lifetime.
func (b *Buffer) Put() {
	if b.buf.Cap() > maxRetainedCap {
		return
	}
	pool.Put(b)
}

// Encode appends v's JSON encoding (with the encoder's trailing newline)
// to the buffer.
func (b *Buffer) Encode(v any) error { return b.enc.Encode(v) }

// EncodeIndent appends v's indented JSON encoding to the buffer. The
// encoder is restored to compact mode before returning, so an indented
// use (snapshot files) never leaks formatting into a pooled encoder's
// next wire-path borrow.
func (b *Buffer) EncodeIndent(v any, prefix, indent string) error {
	b.enc.SetIndent(prefix, indent)
	err := b.enc.Encode(v)
	b.enc.SetIndent("", "")
	return err
}

// Bytes returns the buffered contents. The slice aliases the buffer: it
// must not be used after Put.
func (b *Buffer) Bytes() []byte { return b.buf.Bytes() }

// Len returns the buffered length.
func (b *Buffer) Len() int { return b.buf.Len() }

// Writer exposes the underlying bytes.Buffer for direct writes and
// ReadFrom-style fills (e.g. draining an HTTP response body into the
// pooled array instead of a fresh io.ReadAll slice).
func (b *Buffer) Writer() *bytes.Buffer { return &b.buf }
