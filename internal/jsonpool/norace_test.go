//go:build !race

package jsonpool

const raceEnabled = false
